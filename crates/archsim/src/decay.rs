//! Cache decay (gated-Vdd) simulation — the architectural
//! leakage-reduction baseline the paper positions itself against.
//!
//! Prior work cited by the paper (\[2\] Powell et al., \[5\] Agarwal et al.,
//! \[6\] Kim et al.) cuts leakage by *turning lines off* after an idle
//! interval, trading extra (decay-induced) misses for a lower average
//! powered-on fraction. [`DecaySim`] models the canonical scheme: a line
//! untouched for `decay_interval` references is gated off, losing its
//! contents; statistics report both the induced misses and the
//! time-averaged fraction of lines left powered, which downstream studies
//! multiply into the circuit model's leakage.

use crate::access::Access;
use crate::cache::{CacheParams, CacheStats};
use serde::{Deserialize, Serialize};

/// Statistics of a decaying cache.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DecayStats {
    /// Underlying access statistics (misses include decay-induced ones).
    pub cache: CacheStats,
    /// Misses caused *only* by decay (the line would have been resident).
    pub decay_misses: u64,
    /// Accumulated powered-on line-ticks (numerator of the alive
    /// fraction).
    alive_ticks: u128,
    /// Total line-ticks observed (denominator).
    total_ticks: u128,
}

impl DecayStats {
    /// Time-averaged fraction of lines powered on (1.0 when nothing has
    /// been simulated yet — a cold, un-clocked array burns full leakage).
    pub fn alive_fraction(&self) -> f64 {
        if self.total_ticks == 0 {
            1.0
        } else {
            self.alive_ticks as f64 / self.total_ticks as f64
        }
    }

    /// Decay-induced miss rate (per access).
    pub fn decay_miss_rate(&self) -> f64 {
        if self.cache.accesses == 0 {
            0.0
        } else {
            self.decay_misses as f64 / self.cache.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_touch: u64,
    stamp: u64,
}

/// A set-associative LRU cache whose lines decay (power off, contents
/// lost) after `decay_interval` references without a touch.
///
/// A decayed line still *occupies* its way (the canonical scheme gates
/// power per line but does not compact); re-referencing it is a miss that
/// re-powers the line. `decay_interval = u64::MAX` disables decay, making
/// this behave exactly like [`crate::cache::CacheSim`] under LRU.
///
/// ```
/// use nm_archsim::{Access, CacheParams, DecaySim};
///
/// let mut sim = DecaySim::new(CacheParams::new(1024, 64, 2)?, 4);
/// sim.access(Access::read(0));
/// for b in 1..10u64 {
///     sim.access(Access::read(b * 64)); // idle the first line past 4 refs
/// }
/// let (hit, decayed) = sim.access(Access::read(0));
/// assert!(!hit && decayed);
/// assert!(sim.stats().alive_fraction() < 1.0);
/// # Ok::<(), nm_archsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecaySim {
    params: CacheParams,
    decay_interval: u64,
    lines: Vec<Line>,
    stats: DecayStats,
    tick: u64,
}

impl DecaySim {
    /// Creates a cold decaying cache (LRU replacement, as the decay
    /// literature assumes).
    pub fn new(params: CacheParams, decay_interval: u64) -> Self {
        let total = (params.sets() * params.ways()) as usize;
        DecaySim {
            params,
            decay_interval,
            lines: vec![Line::default(); total],
            stats: DecayStats::default(),
            tick: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// The decay interval in references.
    pub fn decay_interval(&self) -> u64 {
        self.decay_interval
    }

    /// Accumulated statistics.
    ///
    /// The alive fraction is finalised lazily: open alive windows of
    /// currently-valid lines are closed out as of the current tick.
    pub fn stats(&self) -> DecayStats {
        let mut out = self.stats;
        for l in &self.lines {
            if l.valid {
                out.alive_ticks += (self.tick - l.last_touch).min(self.decay_interval) as u128;
            }
        }
        out.total_ticks = self.lines.len() as u128 * u128::from(self.tick);
        out
    }

    /// Probes the cache; returns `(hit, decay_miss)`.
    pub fn access(&mut self, access: Access) -> (bool, bool) {
        self.tick += 1;
        self.stats.cache.accesses += 1;
        if access.is_write() {
            self.stats.cache.writes += 1;
        }
        let interval = self.decay_interval;
        let tick = self.tick;
        let block = access.addr / self.params.block_bytes();
        let set = (block % self.params.sets()) as usize;
        let tag = block / self.params.sets();
        let ways = self.params.ways() as usize;
        let base = set * ways;

        for i in base..base + ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                let decayed = self.tick - self.lines[i].last_touch > self.decay_interval;
                // Close out the alive window since the last touch.
                self.stats.alive_ticks += (tick - self.lines[i].last_touch).min(interval) as u128;
                if decayed {
                    // The contents were lost: refetch (a decay miss), but
                    // the frame is reused in place.
                    self.stats.cache.misses += 1;
                    self.stats.decay_misses += 1;
                    if self.lines[i].dirty {
                        // Dirty lines write back *before* decaying (the
                        // canonical scheme flushes on gate-off).
                        self.stats.cache.writebacks += 1;
                    }
                    self.lines[i].dirty = access.is_write();
                } else if access.is_write() {
                    self.lines[i].dirty = true;
                }
                self.lines[i].last_touch = self.tick;
                self.lines[i].stamp = self.tick;
                return (!decayed, decayed);
            }
        }

        // Genuine miss: LRU victim.
        self.stats.cache.misses += 1;
        let mut victim = base;
        for i in base..base + ways {
            if !self.lines[i].valid {
                victim = i;
                break;
            }
            if self.lines[i].stamp < self.lines[victim].stamp {
                victim = i;
            }
        }
        let v = &mut self.lines[victim];
        if v.valid {
            // Close out the victim's alive window.
            self.stats.alive_ticks += (tick - v.last_touch).min(interval) as u128;
        }
        if v.valid && v.dirty {
            // Either a powered dirty eviction (writeback now) or a line
            // that was flushed when it gated off; both cost one writeback,
            // accounted here so each dirty line pays exactly once.
            self.stats.cache.writebacks += 1;
        }
        *v = Line {
            tag,
            valid: true,
            dirty: access.is_write(),
            last_touch: self.tick,
            stamp: self.tick,
        };
        (false, false)
    }

    /// Runs an iterator of accesses; returns the number processed.
    pub fn run<I: IntoIterator<Item = Access>>(&mut self, accesses: I) -> u64 {
        let mut n = 0;
        for a in accesses {
            self.access(a);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Replacement;

    fn params() -> CacheParams {
        CacheParams::new(4 * 1024, 64, 2).unwrap()
    }

    #[test]
    fn no_decay_matches_plain_lru() {
        use crate::cache::CacheSim;
        let mut plain = CacheSim::new(params(), Replacement::Lru);
        let mut decay = DecaySim::new(params(), u64::MAX);
        for i in 0..20_000u64 {
            let a = Access::read((i.wrapping_mul(2654435761)) % (1 << 16));
            plain.access(a);
            decay.access(a);
        }
        assert_eq!(plain.stats().misses, decay.stats().cache.misses);
        assert_eq!(decay.stats().decay_misses, 0);
    }

    #[test]
    fn short_interval_decays_idle_lines() {
        let mut sim = DecaySim::new(params(), 10);
        sim.access(Access::read(0));
        // Touch other sets for longer than the interval.
        for i in 1..30u64 {
            sim.access(Access::read(i * 64 + 4096));
        }
        let (hit, decay_miss) = sim.access(Access::read(0));
        assert!(!hit);
        assert!(decay_miss);
        assert_eq!(sim.stats().decay_misses, 1);
    }

    #[test]
    fn hot_line_never_decays() {
        let mut sim = DecaySim::new(params(), 10);
        sim.access(Access::read(0));
        for _ in 0..100 {
            let (hit, dm) = sim.access(Access::read(0));
            assert!(hit);
            assert!(!dm);
        }
    }

    #[test]
    fn alive_fraction_falls_with_shorter_intervals() {
        let run = |interval: u64| {
            let mut sim = DecaySim::new(params(), interval);
            for i in 0..50_000u64 {
                sim.access(Access::read((i.wrapping_mul(0x9e3779b9)) % (1 << 16)));
            }
            sim.stats().alive_fraction()
        };
        let short = run(50);
        let long = run(5000);
        assert!(short < long, "short {short} ≥ long {long}");
        assert!((0.0..=1.0).contains(&short));
    }

    #[test]
    fn decay_misses_rise_as_interval_shrinks() {
        let run = |interval: u64| {
            let mut sim = DecaySim::new(params(), interval);
            for i in 0..50_000u64 {
                // Cyclic working set that fits the cache (48 blocks in a
                // 64-frame cache), so every extra miss is decay-induced.
                sim.access(Access::read((i % 48) * 64));
            }
            sim.stats().decay_miss_rate()
        };
        assert!(run(20) > run(2000));
    }

    #[test]
    fn dirty_decay_writes_back_once() {
        let mut sim = DecaySim::new(params(), 5);
        sim.access(Access::write(0));
        for i in 1..20u64 {
            sim.access(Access::read(i * 64 + 8192));
        }
        let before = sim.stats().cache.writebacks;
        sim.access(Access::read(0)); // decayed; dirty copy was flushed
        assert_eq!(sim.stats().cache.writebacks, before + 1);
    }

    #[test]
    fn empty_stats_report_full_power() {
        let sim = DecaySim::new(params(), 100);
        assert_eq!(sim.stats().alive_fraction(), 1.0);
        assert_eq!(sim.stats().decay_miss_rate(), 0.0);
    }
}
