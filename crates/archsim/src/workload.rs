//! Synthetic workload generators standing in for the paper's benchmark
//! suites.
//!
//! The paper gathers cache statistics from "various benchmark suites such
//! as SPEC2000, SPECWEB, TPC/C, etc.". Those traces are not
//! redistributable, so each suite is replaced by a generator reproducing
//! the locality structure the downstream study depends on:
//!
//! * [`SpecLoops`] — loop nests over fixed arrays with a hot stack: high
//!   L1 hit rates that barely move from 4 K to 64 K (the paper's
//!   observation for L1), plus streaming reuse that a multi-megabyte L2
//!   captures.
//! * [`TpccZipf`] — Zipf-distributed record and B-tree-index touches over
//!   a large table plus a sequential log: L2 miss rate falls gradually
//!   with size (diminishing returns — the shape behind the paper's "bigger
//!   L2 wins, up to a point").
//! * [`WebStream`] — Zipf document popularity with sequential scans per
//!   request and a hot metadata set.
//! * [`PointerChase`] — uniformly random dependent loads over a large
//!   heap; the pathological tail that keeps very large L2s from being
//!   free.
//!
//! All generators are deterministic for a given seed.

use crate::access::{Access, AccessKind};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, endless reference-stream generator.
pub trait Workload {
    /// Produces the next memory reference.
    fn next_access(&mut self) -> Access;

    /// Short suite name for reports.
    fn name(&self) -> &'static str;
}

/// Adapter exposing any workload as an iterator of `n` accesses.
pub fn take<W: Workload>(workload: &mut W, n: u64) -> impl Iterator<Item = Access> + '_ {
    (0..n).map(move |_| workload.next_access())
}

/// A probabilistic mixture of workloads: each reference is drawn from one
/// component, chosen by weight (models multiprogrammed reference streams
/// sharing a cache).
pub struct Mix {
    components: Vec<(f64, Box<dyn Workload + Send>)>,
    rng: StdRng,
}

impl Mix {
    /// Builds a mixture from `(weight, workload)` pairs; weights are
    /// normalised internally.
    ///
    /// # Panics
    ///
    /// Panics when `components` is empty or any weight is non-positive or
    /// non-finite.
    pub fn new(components: Vec<(f64, Box<dyn Workload + Send>)>, seed: u64) -> Self {
        assert!(!components.is_empty(), "a mix needs at least one component");
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w > 0.0),
            "mix weights must be positive and finite"
        );
        Mix {
            components,
            rng: StdRng::seed_from_u64(seed ^ 0x1313),
        }
    }

    /// Number of component workloads.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always `false` (construction rejects empty mixes).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Debug for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mix")
            .field("components", &self.components.len())
            .finish()
    }
}

impl Workload for Mix {
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: components non-empty by construction
    fn next_access(&mut self) -> Access {
        let total: f64 = self.components.iter().map(|(w, _)| w).sum();
        let mut draw = self.rng.gen::<f64>() * total;
        for (w, workload) in &mut self.components {
            draw -= *w;
            if draw <= 0.0 {
                return workload.next_access();
            }
        }
        self.components
            .last_mut()
            .expect("non-empty by construction")
            .1
            .next_access()
    }

    fn name(&self) -> &'static str {
        "mix"
    }
}

/// The benchmark-suite mix of the paper, as named generator constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// SPEC CPU2000-like loop nests.
    Spec2000,
    /// TPC-C-like transaction processing.
    TpcC,
    /// SPECWEB-like request serving.
    SpecWeb,
    /// Pointer-chasing stressor (mcf/health-like tail).
    PointerChase,
}

impl SuiteKind {
    /// Every suite, in canonical order.
    pub const ALL: [SuiteKind; 4] = [
        SuiteKind::Spec2000,
        SuiteKind::TpcC,
        SuiteKind::SpecWeb,
        SuiteKind::PointerChase,
    ];

    /// Instantiates the generator for this suite.
    pub fn build(self, seed: u64) -> Box<dyn Workload + Send> {
        match self {
            SuiteKind::Spec2000 => Box::new(SpecLoops::default_suite(seed)),
            SuiteKind::TpcC => Box::new(TpccZipf::default_suite(seed)),
            SuiteKind::SpecWeb => Box::new(WebStream::default_suite(seed)),
            SuiteKind::PointerChase => Box::new(PointerChase::default_suite(seed)),
        }
    }

    /// Parses a suite by its [`name`](Self::name) (case-insensitive,
    /// with or without the "-like" suffix).
    pub fn from_name(name: &str) -> Option<SuiteKind> {
        let n = name.to_ascii_lowercase();
        let n = n.strip_suffix("-like").unwrap_or(&n);
        match n {
            "spec2000" | "spec" => Some(SuiteKind::Spec2000),
            "tpcc" | "tpc-c" => Some(SuiteKind::TpcC),
            "specweb" | "web" => Some(SuiteKind::SpecWeb),
            "pointer-chase" | "pchase" => Some(SuiteKind::PointerChase),
            _ => None,
        }
    }

    /// Suite name.
    pub fn name(self) -> &'static str {
        match self {
            SuiteKind::Spec2000 => "spec2000-like",
            SuiteKind::TpcC => "tpcc-like",
            SuiteKind::SpecWeb => "specweb-like",
            SuiteKind::PointerChase => "pointer-chase",
        }
    }
}

// Address-space bases keep the regions of one generator disjoint.
const STACK_BASE: u64 = 0x7f00_0000_0000;
const HOT_BASE: u64 = 0x1000_0000;
const ARRAY_BASE: u64 = 0x2000_0000;
const HEAP_BASE: u64 = 0x4000_0000;

/// SPEC CPU2000-like loop-nest generator. See the module docs.
#[derive(Debug, Clone)]
pub struct SpecLoops {
    rng: StdRng,
    /// Bytes per streamed array.
    array_bytes: u64,
    /// Number of streamed arrays (round-robin loop nests).
    arrays: u64,
    /// Sequential cursor within the current array.
    cursor: u64,
    /// Current array index.
    current: u64,
    /// Hot-tile size in bytes (fits even the smallest L1).
    hot_bytes: u64,
    /// Warm-region size in bytes (fits mid-size L1s only).
    warm_bytes: u64,
    /// Stack size in bytes.
    stack_bytes: u64,
}

impl SpecLoops {
    /// The default parameterisation: three 512 KB streamed arrays, a 1 KB
    /// blocked tile, a 16 KB warm region and a 1 KB stack — chosen so the
    /// L1 miss rate is low and nearly flat from 4 K to 64 K, matching the
    /// paper's observation.
    pub fn default_suite(seed: u64) -> Self {
        SpecLoops {
            rng: StdRng::seed_from_u64(seed ^ 0x5bec),
            array_bytes: 512 * 1024,
            arrays: 3,
            cursor: 0,
            current: 0,
            hot_bytes: 1024,
            warm_bytes: 16 * 1024,
            stack_bytes: 1024,
        }
    }

    /// A variant with a custom streamed footprint: `arrays` arrays of
    /// `array_bytes` each and a `warm_bytes` reuse region (stack and tile
    /// stay at their defaults). Lets studies scale the L2-relevant working
    /// set.
    ///
    /// # Panics
    ///
    /// Panics when any size is zero or not 8-byte aligned.
    pub fn with_footprint(seed: u64, array_bytes: u64, arrays: u64, warm_bytes: u64) -> Self {
        assert!(
            array_bytes >= 8 && array_bytes.is_multiple_of(8),
            "array_bytes must be a positive multiple of 8"
        );
        assert!(arrays > 0, "need at least one array");
        assert!(
            warm_bytes >= 8 && warm_bytes.is_multiple_of(8),
            "warm_bytes must be a positive multiple of 8"
        );
        SpecLoops {
            array_bytes,
            arrays,
            warm_bytes,
            ..Self::default_suite(seed)
        }
    }
}

impl Workload for SpecLoops {
    fn next_access(&mut self) -> Access {
        let p: f64 = self.rng.gen();
        if p < 0.45 {
            // Stack traffic: tiny, always hot.
            let off = self.rng.gen_range(0..self.stack_bytes / 8) * 8;
            let kind = if self.rng.gen_bool(0.4) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            Access {
                addr: STACK_BASE + off,
                kind,
            }
        } else if p < 0.66 {
            // Blocked tile reuse: fits every L1 under study.
            let off = self.rng.gen_range(0..self.hot_bytes / 8) * 8;
            Access::read(HOT_BASE + off)
        } else if p < 0.70 {
            // Warm region: the small size-dependent L1 component.
            let off = self.rng.gen_range(0..self.warm_bytes / 8) * 8;
            Access::read(HOT_BASE + 0x10_0000 + off)
        } else {
            // Streaming loop over the arrays, 8-byte elements.
            let addr = ARRAY_BASE + self.current * self.array_bytes + self.cursor;
            self.cursor += 8;
            if self.cursor >= self.array_bytes {
                self.cursor = 0;
                self.current = (self.current + 1) % self.arrays;
            }
            if self.rng.gen_bool(0.1) {
                Access::write(addr)
            } else {
                Access::read(addr)
            }
        }
    }

    fn name(&self) -> &'static str {
        "spec2000-like"
    }
}

/// TPC-C-like transaction-processing generator. See the module docs.
#[derive(Debug, Clone)]
pub struct TpccZipf {
    rng: StdRng,
    records: Zipf,
    record_bytes: u64,
    index: Zipf,
    index_bytes: u64,
    log_cursor: u64,
    /// Remaining record touches in the current transaction.
    in_txn: u32,
}

impl TpccZipf {
    /// The default parameterisation: 256 K records of 128 B (32 MB table)
    /// with Zipf(0.95) popularity, a 64 K-node index with Zipf(1.2), and a
    /// sequential log.
    pub fn default_suite(seed: u64) -> Self {
        TpccZipf {
            rng: StdRng::seed_from_u64(seed ^ 0x79cc),
            records: Zipf::new(256 * 1024, 0.95),
            record_bytes: 128,
            index: Zipf::new(64 * 1024, 1.2),
            index_bytes: 64,
            log_cursor: 0,
            in_txn: 0,
        }
    }

    /// A variant with a custom table: `records` rows of `record_bytes`
    /// with Zipf skew `s` (the index keeps its defaults). Lets studies
    /// scale the database working set.
    ///
    /// # Panics
    ///
    /// Panics for zero sizes or a negative/non-finite skew.
    pub fn with_table(seed: u64, records: usize, record_bytes: u64, s: f64) -> Self {
        assert!(records > 0, "need at least one record");
        assert!(record_bytes > 0, "records must have a size");
        TpccZipf {
            records: Zipf::new(records, s),
            record_bytes,
            ..Self::default_suite(seed)
        }
    }
}

impl Workload for TpccZipf {
    fn next_access(&mut self) -> Access {
        if self.in_txn == 0 {
            self.in_txn = self.rng.gen_range(8..24);
        }
        self.in_txn -= 1;
        let p: f64 = self.rng.gen();
        if p < 0.68 {
            // Stack and transaction-local state: tiny, always hot (the
            // dominant component that keeps L1 miss rates low, as the
            // paper observes for all its suites).
            let off = self.rng.gen_range(0..256u64) * 8;
            let kind = if self.rng.gen_bool(0.35) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            Access {
                addr: STACK_BASE + off,
                kind,
            }
        } else if p < 0.86 {
            // Index walk: very hot upper levels.
            let node = self.index.sample(&mut self.rng) as u64;
            Access::read(HOT_BASE + node * self.index_bytes)
        } else if p < 0.91 {
            // Record touch.
            let r = self.records.sample(&mut self.rng) as u64;
            let addr = HEAP_BASE + r * self.record_bytes + self.rng.gen_range(0..16) * 8;
            if self.rng.gen_bool(0.3) {
                Access::write(addr)
            } else {
                Access::read(addr)
            }
        } else {
            // Log append: pure streaming writes.
            let addr = ARRAY_BASE + (self.log_cursor % (64 * 1024 * 1024));
            self.log_cursor += 8;
            Access::write(addr)
        }
    }

    fn name(&self) -> &'static str {
        "tpcc-like"
    }
}

/// SPECWEB-like request-serving generator. See the module docs.
#[derive(Debug, Clone)]
pub struct WebStream {
    rng: StdRng,
    docs: Zipf,
    doc_bytes: u64,
    metadata: Zipf,
    /// Sequential cursor within the currently served document.
    cursor: u64,
    current_doc: u64,
    /// Bytes left to stream for the current request.
    remaining: u64,
}

impl WebStream {
    /// The default parameterisation: 2048 documents of 8 KB (16 MB corpus)
    /// with Zipf(0.8) popularity and a 32 KB metadata set.
    pub fn default_suite(seed: u64) -> Self {
        WebStream {
            rng: StdRng::seed_from_u64(seed ^ 0x3eb),
            docs: Zipf::new(2048, 0.8),
            doc_bytes: 8 * 1024,
            metadata: Zipf::new(512, 1.0),
            cursor: 0,
            current_doc: 0,
            remaining: 0,
        }
    }

    /// A variant with a custom corpus: `docs` documents of `doc_bytes`
    /// each with Zipf skew `s`.
    ///
    /// # Panics
    ///
    /// Panics for zero sizes or a negative/non-finite skew.
    pub fn with_corpus(seed: u64, docs: usize, doc_bytes: u64, s: f64) -> Self {
        assert!(docs > 0, "need at least one document");
        assert!(doc_bytes >= 8, "documents must hold at least one word");
        WebStream {
            docs: Zipf::new(docs, s),
            doc_bytes,
            ..Self::default_suite(seed)
        }
    }
}

impl Workload for WebStream {
    fn next_access(&mut self) -> Access {
        let p: f64 = self.rng.gen();
        if p < 0.50 {
            // Request-handler stack: tiny, always hot.
            let off = self.rng.gen_range(0..192u64) * 8;
            Access::read(STACK_BASE + off)
        } else if p < 0.80 {
            // Metadata / connection-state lookup (64 B entries).
            let e = self.metadata.sample(&mut self.rng) as u64;
            Access::read(HOT_BASE + e * 64)
        } else {
            if self.remaining == 0 {
                self.current_doc = self.docs.sample(&mut self.rng) as u64;
                self.cursor = 0;
                self.remaining = self.doc_bytes;
            }
            let addr = HEAP_BASE + self.current_doc * self.doc_bytes + self.cursor;
            self.cursor += 8;
            self.remaining = self.remaining.saturating_sub(8);
            Access::read(addr)
        }
    }

    fn name(&self) -> &'static str {
        "specweb-like"
    }
}

/// Pointer-chasing stressor. See the module docs.
#[derive(Debug, Clone)]
pub struct PointerChase {
    rng: StdRng,
    heap_bytes: u64,
    node_bytes: u64,
    position: u64,
}

impl PointerChase {
    /// The default parameterisation: 64 B nodes over an 8 MB heap.
    pub fn default_suite(seed: u64) -> Self {
        PointerChase {
            rng: StdRng::seed_from_u64(seed ^ 0xbc4a),
            heap_bytes: 8 * 1024 * 1024,
            node_bytes: 64,
            position: 0,
        }
    }

    /// A variant over a custom heap size.
    ///
    /// # Panics
    ///
    /// Panics when the heap holds fewer than one node.
    pub fn with_heap(seed: u64, heap_bytes: u64) -> Self {
        assert!(heap_bytes >= 64, "heap must hold at least one node");
        PointerChase {
            heap_bytes,
            ..Self::default_suite(seed)
        }
    }
}

impl Workload for PointerChase {
    fn next_access(&mut self) -> Access {
        let p: f64 = self.rng.gen();
        if p < 0.5 {
            // Interleaved stack work.
            let off = self.rng.gen_range(0..512u64) * 8;
            Access::read(STACK_BASE + off)
        } else {
            // Next hop: uniform over the heap (dependent-load pattern).
            let nodes = self.heap_bytes / self.node_bytes;
            self.position = self.rng.gen_range(0..nodes);
            Access::read(HEAP_BASE + self.position * self.node_bytes)
        }
    }

    fn name(&self) -> &'static str {
        "pointer-chase"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheParams, CacheSim, Replacement};

    fn l1_miss_rate<W: Workload>(mut w: W, size_kb: u64, n: u64) -> f64 {
        let mut sim = CacheSim::new(
            CacheParams::new(size_kb * 1024, 64, 4).unwrap(),
            Replacement::Lru,
        );
        // Warm up then measure.
        for _ in 0..n {
            sim.access(w.next_access());
        }
        sim.reset_stats();
        for _ in 0..n {
            sim.access(w.next_access());
        }
        sim.stats().miss_rate()
    }

    #[test]
    fn spec_l1_miss_rate_low_and_flat() {
        // The paper: local L1 miss rates are "already very low and they do
        // not vary much amongst the L1 caches ranging from 4K to 64K".
        let m4 = l1_miss_rate(SpecLoops::default_suite(1), 4, 150_000);
        let m64 = l1_miss_rate(SpecLoops::default_suite(1), 64, 150_000);
        assert!(m4 < 0.15, "4K miss rate = {m4}");
        assert!(m64 < 0.06, "64K miss rate = {m64}");
        assert!(m4 - m64 < 0.12, "m4 = {m4}, m64 = {m64}");
    }

    #[test]
    fn all_suites_deterministic() {
        for kind in SuiteKind::ALL {
            let mut a = kind.build(33);
            let mut b = kind.build(33);
            for _ in 0..1000 {
                assert_eq!(a.next_access(), b.next_access(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn suites_differ_across_seeds() {
        let mut a = SuiteKind::TpcC.build(1);
        let mut b = SuiteKind::TpcC.build(2);
        let same = (0..100)
            .filter(|_| a.next_access() == b.next_access())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn tpcc_has_writes() {
        let mut w = TpccZipf::default_suite(5);
        let writes = (0..10_000).filter(|_| w.next_access().is_write()).count();
        assert!(writes > 500, "writes = {writes}");
    }

    #[test]
    fn web_streams_documents_sequentially() {
        let mut w = WebStream::default_suite(7);
        // Find two consecutive document accesses and check the stride.
        let mut sequential_pairs = 0;
        let mut last: Option<u64> = None;
        for _ in 0..10_000 {
            let a = w.next_access();
            if a.addr >= HEAP_BASE {
                if let Some(prev) = last {
                    if a.addr == prev + 8 {
                        sequential_pairs += 1;
                    }
                }
                last = Some(a.addr);
            } else {
                last = None;
            }
        }
        assert!(sequential_pairs > 150, "pairs = {sequential_pairs}");
    }

    #[test]
    fn pointer_chase_hurts_even_big_caches() {
        let m = l1_miss_rate(PointerChase::default_suite(9), 64, 100_000);
        assert!(m > 0.2, "miss rate = {m}");
    }

    #[test]
    fn suite_names_are_stable() {
        for kind in SuiteKind::ALL {
            assert_eq!(kind.build(0).name(), kind.name());
        }
    }

    #[test]
    fn suite_names_roundtrip_through_from_name() {
        for kind in SuiteKind::ALL {
            assert_eq!(SuiteKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SuiteKind::from_name("SPEC"), Some(SuiteKind::Spec2000));
        assert_eq!(SuiteKind::from_name("web"), Some(SuiteKind::SpecWeb));
        assert_eq!(SuiteKind::from_name("bogus"), None);
    }

    #[test]
    fn take_yields_exactly_n() {
        let mut w = SpecLoops::default_suite(3);
        assert_eq!(take(&mut w, 123).count(), 123);
    }

    #[test]
    fn mix_draws_from_all_components_by_weight() {
        let mut mix = Mix::new(
            vec![
                (3.0, SuiteKind::Spec2000.build(1)),
                (1.0, SuiteKind::TpcC.build(1)),
            ],
            9,
        );
        assert_eq!(mix.len(), 2);
        assert!(!mix.is_empty());
        // TpcC's stack region sits at STACK_BASE with 8-byte slots like
        // spec's; distinguish by the disjoint data regions instead: count
        // accesses landing in TpcC's record heap.
        let mut heap = 0;
        let n = 20_000;
        for _ in 0..n {
            let a = mix.next_access();
            if a.addr >= HEAP_BASE && a.addr < STACK_BASE {
                heap += 1;
            }
        }
        assert!(heap > 0, "second component never drawn");
    }

    #[test]
    fn mix_is_deterministic() {
        let build = || {
            let mut m = Mix::new(
                vec![
                    (1.0, SuiteKind::Spec2000.build(4)),
                    (1.0, SuiteKind::SpecWeb.build(4)),
                ],
                11,
            );
            (0..500).map(|_| m.next_access()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn parameterized_constructors_shape_the_working_set() {
        // A bigger streamed footprint must miss the L2 more.
        let run = |array_bytes: u64| {
            let mut sim = CacheSim::new(
                CacheParams::new(512 * 1024, 64, 8).unwrap(),
                Replacement::Lru,
            );
            let mut w = SpecLoops::with_footprint(3, array_bytes, 3, 16 * 1024);
            for _ in 0..300_000 {
                sim.access(w.next_access());
            }
            sim.stats().miss_rate()
        };
        assert!(run(2 * 1024 * 1024) > run(64 * 1024));
    }

    #[test]
    fn tpcc_and_web_variants_construct() {
        let mut t = TpccZipf::with_table(1, 1024, 256, 1.0);
        let mut w = WebStream::with_corpus(1, 64, 4096, 0.9);
        let mut p = PointerChase::with_heap(1, 1024 * 1024);
        for _ in 0..100 {
            let _ = t.next_access();
            let _ = w.next_access();
            let _ = p.next_access();
        }
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_records_panics() {
        let _ = TpccZipf::with_table(1, 0, 128, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mix_panics() {
        let _ = Mix::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn non_positive_weight_panics() {
        let _ = Mix::new(vec![(0.0, SuiteKind::Spec2000.build(1))], 1);
    }
}
