//! A single set-associative cache with write-back/write-allocate
//! semantics.

use crate::access::Access;
use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (the paper-era default).
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (xorshift over an internal counter — deterministic
    /// for reproducibility).
    Random,
}

/// Architectural cache parameters for simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheParams {
    size_bytes: u64,
    block_bytes: u64,
    ways: u64,
}

impl CacheParams {
    /// Validates and creates simulation parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::NotPowerOfTwo`] for non-power-of-two inputs;
    /// [`SimError::InconsistentShape`] when the shape has no sets.
    pub fn new(size_bytes: u64, block_bytes: u64, ways: u64) -> Result<Self, SimError> {
        for (which, value) in [("size", size_bytes), ("block", block_bytes), ("ways", ways)] {
            if value == 0 || !value.is_power_of_two() {
                return Err(SimError::NotPowerOfTwo { which, value });
            }
        }
        if size_bytes < block_bytes * ways {
            return Err(SimError::InconsistentShape {
                size: size_bytes,
                block: block_bytes,
                ways,
            });
        }
        Ok(CacheParams {
            size_bytes,
            block_bytes,
            ways,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Block size in bytes.
    pub fn block_bytes(self) -> u64 {
        self.block_bytes
    }

    /// Associativity.
    pub fn ways(self) -> u64 {
        self.ways
    }

    /// Number of sets.
    pub fn sets(self) -> u64 {
        self.size_bytes / (self.block_bytes * self.ways)
    }
}

impl fmt::Display for CacheParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B/{}-way",
            self.size_bytes / 1024,
            self.block_bytes,
            self.ways
        )
    }
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The block was resident.
    Hit,
    /// The block was absent; `victim_writeback` reports whether a dirty
    /// line was evicted to make room.
    Miss {
        /// A dirty victim was written back.
        victim_writeback: bool,
    },
}

impl Outcome {
    /// `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// Running access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total probes.
    pub accesses: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Store probes.
    pub writes: u64,
}

impl CacheStats {
    /// Miss rate (0 when no accesses yet).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate (complement of the miss rate).
    pub fn hit_rate(&self) -> f64 {
        1.0 - self.miss_rate()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or FIFO insertion order, depending on policy.
    stamp: u64,
}

/// A set-associative, write-back, write-allocate cache simulator.
///
/// Deterministic for a given access sequence and policy (the random policy
/// uses an internal xorshift generator seeded by construction).
///
/// ```
/// use nm_archsim::{Access, CacheParams, CacheSim, Replacement};
///
/// let mut sim = CacheSim::new(CacheParams::new(1024, 64, 2)?, Replacement::Lru);
/// assert!(!sim.access(Access::read(0x40)).is_hit()); // compulsory miss
/// assert!(sim.access(Access::read(0x40)).is_hit());
/// assert_eq!(sim.stats().misses, 1);
/// # Ok::<(), nm_archsim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    params: CacheParams,
    policy: Replacement,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    rng_state: u64,
}

impl CacheSim {
    /// Creates an empty (cold) cache.
    pub fn new(params: CacheParams, policy: Replacement) -> Self {
        let total_lines = (params.sets() * params.ways()) as usize;
        CacheSim {
            params,
            policy,
            lines: vec![Line::default(); total_lines],
            stats: CacheStats::default(),
            tick: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// The replacement policy.
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after a warm-up phase) without flushing
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Flushes all contents and statistics back to the cold state.
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    fn set_index_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.params.block_bytes;
        let set = (block % self.params.sets()) as usize;
        let tag = block / self.params.sets();
        (set, tag)
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Probes the cache with one reference, updating state and statistics.
    pub fn access(&mut self, access: Access) -> Outcome {
        self.tick += 1;
        self.stats.accesses += 1;
        if access.is_write() {
            self.stats.writes += 1;
        }
        let (set, tag) = self.set_index_and_tag(access.addr);
        let ways = self.params.ways() as usize;
        let base = set * ways;

        // Hit path.
        for i in base..base + ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                if self.policy == Replacement::Lru {
                    self.lines[i].stamp = self.tick;
                }
                if access.is_write() {
                    self.lines[i].dirty = true;
                }
                return Outcome::Hit;
            }
        }

        // Miss path: pick a victim.
        self.stats.misses += 1;
        let victim = match self.policy {
            Replacement::Lru | Replacement::Fifo => {
                let mut best = base;
                for i in base..base + ways {
                    if !self.lines[i].valid {
                        best = i;
                        break;
                    }
                    if self.lines[i].stamp < self.lines[best].stamp {
                        best = i;
                    }
                }
                best
            }
            Replacement::Random => {
                // Prefer an invalid way when one exists.
                (base..base + ways)
                    .find(|&i| !self.lines[i].valid)
                    .unwrap_or_else(|| base + (self.next_random() as usize % ways))
            }
        };

        let victim_writeback = self.lines[victim].valid && self.lines[victim].dirty;
        if victim_writeback {
            self.stats.writebacks += 1;
        }
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: access.is_write(),
            stamp: self.tick,
        };
        Outcome::Miss { victim_writeback }
    }

    /// Runs a whole iterator of accesses, returning the number processed.
    pub fn run<I: IntoIterator<Item = Access>>(&mut self, accesses: I) -> u64 {
        let mut n = 0;
        for a in accesses {
            self.access(a);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(size: u64, block: u64, ways: u64) -> CacheParams {
        CacheParams::new(size, block, ways).unwrap()
    }

    #[test]
    fn validation() {
        assert!(CacheParams::new(1000, 64, 4).is_err());
        assert!(CacheParams::new(1024, 64, 32).is_err());
        assert!(CacheParams::new(1024, 64, 16).is_ok()); // fully associative
        assert_eq!(params(16 * 1024, 64, 4).sets(), 64);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(params(1024, 64, 2), Replacement::Lru);
        assert!(!c.access(Access::read(0x100)).is_hit());
        assert!(c.access(Access::read(0x100)).is_hit());
        assert!(c.access(Access::read(0x13f)).is_hit()); // same block
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way set; fill both ways, touch the first, insert a third.
        let mut c = CacheSim::new(params(1024, 64, 2), Replacement::Lru);
        let sets = c.params().sets(); // 8 sets
        let stride = 64 * sets; // same set, different tags
        c.access(Access::read(0));
        c.access(Access::read(stride));
        c.access(Access::read(0)); // 0 is now MRU
        c.access(Access::read(2 * stride)); // evicts `stride`
        assert!(c.access(Access::read(0)).is_hit());
        assert!(!c.access(Access::read(stride)).is_hit());
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut c = CacheSim::new(params(1024, 64, 2), Replacement::Fifo);
        let stride = 64 * c.params().sets();
        c.access(Access::read(0));
        c.access(Access::read(stride));
        c.access(Access::read(0)); // does NOT refresh FIFO order
        c.access(Access::read(2 * stride)); // evicts 0 (oldest insertion)
        assert!(!c.access(Access::read(0)).is_hit());
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = CacheSim::new(params(1024, 64, 1), Replacement::Lru);
        let stride = 64 * c.params().sets();
        c.access(Access::write(0));
        let out = c.access(Access::read(stride)); // evicts dirty line 0
        assert_eq!(
            out,
            Outcome::Miss {
                victim_writeback: true
            }
        );
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction produces no writeback.
        let out = c.access(Access::read(2 * stride));
        assert_eq!(
            out,
            Outcome::Miss {
                victim_writeback: false
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = CacheSim::new(params(4096, 64, 4), Replacement::Random);
            for i in 0..10_000u64 {
                c.access(Access::read((i * 2654435761) % (1 << 20)));
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn working_set_that_fits_has_no_capacity_misses() {
        let mut c = CacheSim::new(params(16 * 1024, 64, 4), Replacement::Lru);
        // 8 KB working set scanned repeatedly.
        for _round in 0..10 {
            for block in 0..128u64 {
                c.access(Access::read(block * 64));
            }
        }
        // Only the 128 cold misses.
        assert_eq!(c.stats().misses, 128);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes_with_lru() {
        // Classic LRU pathology: a cyclic scan one block larger than a
        // fully-associative cache misses on every access.
        let mut c = CacheSim::new(params(1024, 64, 16), Replacement::Lru);
        let blocks = 1024 / 64 + 1;
        for _round in 0..5 {
            for b in 0..blocks {
                c.access(Access::read(b * 64));
            }
        }
        let mr = c.stats().miss_rate();
        assert!(mr > 0.9, "miss rate = {mr}");
    }

    #[test]
    fn flush_and_reset_stats() {
        let mut c = CacheSim::new(params(1024, 64, 2), Replacement::Lru);
        c.access(Access::read(0));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(Access::read(0)).is_hit()); // contents survived
        c.flush();
        assert!(!c.access(Access::read(0)).is_hit()); // cold again
    }

    #[test]
    fn stats_rates() {
        let s = CacheStats {
            accesses: 100,
            misses: 25,
            writebacks: 0,
            writes: 0,
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn run_consumes_iterator() {
        let mut c = CacheSim::new(params(1024, 64, 2), Replacement::Lru);
        let n = c.run((0..100u64).map(|i| Access::read(i * 64)));
        assert_eq!(n, 100);
        assert_eq!(c.stats().accesses, 100);
    }
}
