//! Property tests for the cache simulator and trace machinery.

use nm_archsim::cache::{CacheParams, CacheSim, Replacement};
use nm_archsim::decay::DecaySim;
use nm_archsim::hierarchy::TwoLevel;
use nm_archsim::trace::{read_trace, read_trace_binary, write_trace, TraceWorkload};
use nm_archsim::workload::Workload;
use nm_archsim::{Access, AccessKind};
use proptest::prelude::*;

fn arb_access() -> impl Strategy<Value = Access> {
    (0u64..(1 << 24), prop::bool::ANY).prop_map(|(addr, w)| Access {
        addr,
        kind: if w {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The text trace parser never panics on arbitrary input — it either
    /// parses or returns a structured error.
    #[test]
    fn text_parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_trace(bytes.as_slice());
    }

    /// The binary trace parser never panics on arbitrary input.
    #[test]
    fn binary_parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_trace_binary(bytes.as_slice());
    }

    /// Valid binary payloads with arbitrary trailing garbage fail cleanly
    /// rather than panicking.
    #[test]
    fn binary_parser_handles_corrupt_tails(
        trace in prop::collection::vec(arb_access(), 1..20),
        tail in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut buf = Vec::new();
        nm_archsim::trace::write_trace_binary(&mut buf, trace.clone()).unwrap();
        buf.extend(&tail);
        // Either the tail happened to parse as records, or a clean error.
        if let Ok(parsed) = read_trace_binary(buf.as_slice()) {
            prop_assert!(parsed.len() >= trace.len());
        }
    }

    /// Trace serialisation round-trips arbitrary access sequences.
    #[test]
    fn trace_roundtrip(trace in prop::collection::vec(arb_access(), 1..200)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, trace.iter().copied()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Replaying a trace through `TraceWorkload` visits exactly the
    /// recorded accesses, in order, cyclically.
    #[test]
    fn replay_is_faithful(trace in prop::collection::vec(arb_access(), 1..50), rounds in 1usize..4) {
        let mut w = TraceWorkload::new(trace.clone());
        for _ in 0..rounds {
            for &expected in &trace {
                prop_assert_eq!(w.next_access(), expected);
            }
        }
    }

    /// Every policy gives the same miss count on a single-way cache
    /// (no replacement choice exists).
    #[test]
    fn policies_agree_direct_mapped(trace in prop::collection::vec(arb_access(), 10..300)) {
        let params = CacheParams::new(4 * 1024, 64, 1).unwrap();
        let run = |policy| {
            let mut sim = CacheSim::new(params, policy);
            for &a in &trace {
                sim.access(a);
            }
            sim.stats().misses
        };
        let lru = run(Replacement::Lru);
        prop_assert_eq!(run(Replacement::Fifo), lru);
        prop_assert_eq!(run(Replacement::Random), lru);
    }

    /// Writebacks only happen when there were writes.
    #[test]
    fn no_writebacks_without_writes(addrs in prop::collection::vec(0u64..(1 << 20), 10..300)) {
        let mut sim = CacheSim::new(CacheParams::new(2048, 64, 2).unwrap(), Replacement::Lru);
        for &a in &addrs {
            sim.access(Access::read(a));
        }
        prop_assert_eq!(sim.stats().writebacks, 0);
        prop_assert_eq!(sim.stats().writes, 0);
    }

    /// Hierarchy consistency: L2 demand accesses equal L1 misses, and
    /// the global rate is the product of the locals.
    #[test]
    fn hierarchy_demand_accounting(trace in prop::collection::vec(arb_access(), 50..400)) {
        let mut h = TwoLevel::new(
            CacheParams::new(4 * 1024, 64, 2).unwrap(),
            CacheParams::new(64 * 1024, 64, 4).unwrap(),
            Replacement::Lru,
        );
        for &a in &trace {
            h.access(a);
        }
        let s = h.stats();
        prop_assert_eq!(s.l2.accesses, s.l1.misses);
        prop_assert!(s.l2.misses <= s.l2.accesses);
        let expected = s.l1_miss_rate() * s.l2_local_miss_rate();
        prop_assert!((s.l2_global_miss_rate() - expected).abs() < 1e-12);
    }

    /// With decay disabled, `DecaySim` is reference-equal to the plain
    /// LRU simulator on any trace, and its alive fraction is a proper
    /// fraction for any interval.
    #[test]
    fn decay_sim_consistency(
        trace in prop::collection::vec(arb_access(), 20..300),
        interval_log2 in 2u32..16,
    ) {
        let params = CacheParams::new(4 * 1024, 64, 2).unwrap();
        let mut plain = CacheSim::new(params, Replacement::Lru);
        let mut no_decay = DecaySim::new(params, u64::MAX);
        for &a in &trace {
            plain.access(a);
            no_decay.access(a);
        }
        prop_assert_eq!(plain.stats().misses, no_decay.stats().cache.misses);
        prop_assert_eq!(no_decay.stats().decay_misses, 0);

        let mut decaying = DecaySim::new(params, 1 << interval_log2);
        for &a in &trace {
            decaying.access(a);
        }
        let s = decaying.stats();
        let alive = s.alive_fraction();
        prop_assert!((0.0..=1.0).contains(&alive), "alive = {alive}");
        // Decay can only add misses relative to plain LRU.
        prop_assert!(s.cache.misses >= plain.stats().misses);
        prop_assert!(s.decay_misses <= s.cache.misses);
    }

    /// A cache that holds the whole (block-aligned) footprint of a trace
    /// only takes compulsory misses on a second pass.
    #[test]
    fn warm_cache_has_no_misses_on_refetch(
        blocks in prop::collection::vec(0u64..64, 1..64),
    ) {
        // 64 distinct blocks max, 16 KB fully covers 4 KB of footprint.
        let mut sim = CacheSim::new(CacheParams::new(16 * 1024, 64, 8).unwrap(), Replacement::Lru);
        for &b in &blocks {
            sim.access(Access::read(b * 64));
        }
        sim.reset_stats();
        for &b in &blocks {
            sim.access(Access::read(b * 64));
        }
        prop_assert_eq!(sim.stats().misses, 0);
    }
}
