//! Lint-fixture crate: each function below violates one rule so the
//! integration tests can prove every rule fires on real on-disk files.
//! These sources are lexed by nm-analyze, never compiled.

use std::collections::HashMap;
use std::thread;

pub fn d1_partial(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}

pub fn d1_literal(x: f64) -> bool {
    x == 0.5
}

pub fn d2_panics(o: Option<u32>) -> u32 {
    match o {
        Some(v) => v,
        None => panic!("boom"),
    }
}

pub fn d2_unwraps(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn d3_reads_the_clock() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn d4_hash_map() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn d5_spawns() {
    thread::spawn(|| {});
}

pub fn d6_names() {
    nm_telemetry::counter_inc("demo.used");
    nm_telemetry::counter_inc("demo.typo");
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked_violations_stay_silent() {
        let o: Option<u32> = None;
        o.unwrap();
    }
}
