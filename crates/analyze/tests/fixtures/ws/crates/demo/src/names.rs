//! Fixture names module: one const in the manifest, one typo'd.

/// Present in the fixture manifest.
pub const USED: &str = "demo.const_used";
/// Absent from the fixture manifest — must fire D6.
pub const TYPO: &str = "demo.const_typo";
