//! Property tests for the hand-rolled lexer, run over a real corpus:
//! the analyzer's own sources. Three invariants every rule depends on:
//!
//! 1. **Span accuracy** — each token's `offset` points at its exact
//!    verbatim text in the source, and `line`/`col` agree with a
//!    character count from the start of the file.
//! 2. **Span monotonicity** — tokens come back in strictly increasing
//!    source order (rules do `prev_tok`/`get(i + 1)` arithmetic on it).
//! 3. **Re-lex stability** — joining the token texts with single spaces
//!    and lexing again reproduces the same (kind, text) sequence, so no
//!    token's meaning leaks into its neighbours' whitespace.

use nm_analyze::lexer::{lex, TokenKind};
use std::fs;
use std::path::PathBuf;

fn corpus() -> Vec<(String, String)> {
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files: Vec<(String, String)> = fs::read_dir(&src_dir)
        .expect("analyzer src dir exists")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            let name = path.file_name()?.to_string_lossy().into_owned();
            if !name.ends_with(".rs") {
                return None;
            }
            Some((name, fs::read_to_string(&path).expect("corpus file reads")))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 5, "corpus should cover the whole crate");
    files
}

#[test]
fn spans_are_accurate_and_strictly_monotonic() {
    for (name, src) in corpus() {
        let toks = lex(&src);
        assert!(!toks.is_empty(), "{name}: corpus file lexes to tokens");
        let mut prev_end = 0usize;
        for t in &toks {
            let start = t.span.offset;
            let end = start + t.text.len();
            assert!(
                start >= prev_end,
                "{name}: token {:?} at offset {start} overlaps its predecessor",
                t.text
            );
            assert_eq!(
                &src[start..end],
                t.text,
                "{name}: token text disagrees with the source at offset {start}"
            );
            let line = 1 + src[..start].bytes().filter(|&b| b == b'\n').count() as u32;
            assert_eq!(t.span.line, line, "{name}: line of {:?}", t.text);
            let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
            let col = 1 + src[line_start..start].chars().count() as u32;
            assert_eq!(t.span.col, col, "{name}: col of {:?}", t.text);
            prev_end = end;
        }
    }
}

#[test]
fn relexing_space_joined_tokens_is_stable() {
    for (name, src) in corpus() {
        let toks = lex(&src);
        let joined = toks
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let again = lex(&joined);
        assert_eq!(
            toks.len(),
            again.len(),
            "{name}: token count changed on re-lex"
        );
        for (a, b) in toks.iter().zip(&again) {
            assert_eq!(
                a.kind, b.kind,
                "{name}: kind of {:?} changed on re-lex",
                a.text
            );
            assert_eq!(a.text, b.text, "{name}: text changed on re-lex");
        }
    }
}

#[test]
fn lexing_is_deterministic() {
    for (name, src) in corpus() {
        assert_eq!(lex(&src), lex(&src), "{name}: two lexes disagree");
    }
}

#[test]
fn malformed_input_degrades_without_panicking() {
    // The lexer promises best-effort tokens, never a panic.
    for src in [
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated /* nested",
        "'",
        "b\"",
        "1e",
        "\u{1F980} emoji idents?",
    ] {
        let toks = lex(src);
        // Whatever came back still satisfies span accuracy.
        for t in &toks {
            let start = t.span.offset;
            assert!(start <= src.len());
        }
    }
    assert!(lex("").is_empty());
}

#[test]
fn token_kinds_cover_the_corpus() {
    // Sanity: the corpus exercises every token class the rules rely on.
    let mut seen = [false; 6];
    for (_, src) in corpus() {
        for t in lex(&src) {
            let i = match t.kind {
                TokenKind::Ident => 0,
                TokenKind::Lifetime => 1,
                TokenKind::Str => 2,
                TokenKind::Char => 3,
                TokenKind::Num => 4,
                TokenKind::Punct => 5,
            };
            seen[i] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "corpus misses a token kind: {seen:?}"
    );
}
