//! Integration tests over the on-disk fixture workspace in
//! `tests/fixtures/ws`: every rule proven live against real files, the
//! text report pinned to a golden snapshot, and the allowlist's
//! suppress / stale / malformed behaviours exercised end to end.

use nm_analyze::{analyze, report, rules::RuleId, AnalyzeError, Config};
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_config() -> Config {
    Config::for_root(fixtures_dir().join("ws"))
}

#[test]
fn every_rule_fires_on_the_fixture_workspace() {
    let analysis = analyze(&fixture_config()).expect("fixture workspace analyzes");
    assert!(!analysis.is_clean());
    assert_eq!(analysis.files_scanned, 2);
    let counts = analysis.counts();
    assert_eq!(counts["D1"], 2, "partial_cmp + float-literal equality");
    assert_eq!(counts["D2"], 2, "panic! + .unwrap()");
    assert_eq!(counts["D3"], 1, "Instant::now");
    assert_eq!(counts["D4"], 3, "three HashMap mentions");
    assert_eq!(counts["D5"], 1, "thread::spawn");
    assert_eq!(
        counts["D6"], 3,
        "typo'd literal + typo'd const + dead manifest entry"
    );
    // The #[cfg(test)] unwrap in the fixture must not be among them.
    assert!(analysis
        .findings
        .iter()
        .all(|f| !(f.rule == RuleId::D2 && f.line > 43)));
}

#[test]
fn text_report_matches_the_golden_snapshot() {
    let analysis = analyze(&fixture_config()).expect("fixture workspace analyzes");
    let expected = include_str!("fixtures/ws_expected.txt");
    assert_eq!(report::render_text(&analysis), expected);
}

#[test]
fn json_report_carries_schema_and_findings() {
    let analysis = analyze(&fixture_config()).expect("fixture workspace analyzes");
    let json = report::render_json(&analysis);
    assert!(json.contains("\"schema_version\""));
    assert!(json.contains("nm-analyze"));
    assert!(json.contains("demo.typo"));
    assert!(json.contains("demo.dead"));
    assert!(json.contains("\"fingerprint\""));
}

#[test]
fn allowlist_suppresses_exactly_its_fingerprints() {
    let mut config = fixture_config();
    config.allow_path = fixtures_dir().join("suppress.allow");
    let analysis = analyze(&config).expect("fixture workspace analyzes");
    assert_eq!(analysis.allowlisted, 2);
    assert!(analysis.stale.is_empty());
    assert_eq!(analysis.counts()["D2"], 0, "both D2 sites suppressed");
    assert_eq!(analysis.findings.len(), 10);
}

#[test]
fn stale_allowlist_entries_fail_the_run() {
    let mut config = fixture_config();
    config.allow_path = fixtures_dir().join("stale.allow");
    let analysis = analyze(&config).expect("fixture workspace analyzes");
    assert_eq!(analysis.stale.len(), 1);
    assert_eq!(analysis.stale[0].fingerprint, "0000000000000000");
    assert!(!analysis.is_clean());
    // Stale entries surface in the rendered report too.
    assert!(report::render_text(&analysis).contains("stale entry"));
}

#[test]
fn malformed_allowlist_is_a_usage_error_not_io() {
    let mut config = fixture_config();
    config.allow_path = fixtures_dir().join("bad.allow");
    let err = analyze(&config).expect_err("malformed allowlist fails");
    assert!(matches!(err, AnalyzeError::Allow(_)));
    assert!(!err.is_io());
}

#[test]
fn missing_manifest_is_an_io_error() {
    let mut config = fixture_config();
    config.manifest_path = PathBuf::from("no_such_manifest.txt");
    let err = analyze(&config).expect_err("missing manifest fails");
    assert!(err.is_io());
}

#[test]
fn rule_selection_skips_the_manifest_entirely() {
    // With D6 disabled the manifest is never read, so a bogus path is fine.
    let mut config = fixture_config();
    config.rules = vec![RuleId::D4];
    config.manifest_path = PathBuf::from("no_such_manifest.txt");
    let analysis = analyze(&config).expect("D4-only run analyzes");
    assert_eq!(analysis.findings.len(), 3);
    assert!(analysis.findings.iter().all(|f| f.rule == RuleId::D4));
}
