//! Rendering an [`Analysis`](crate::Analysis) for humans and machines.
//!
//! The human form is one diagnostic per line in the familiar
//! `path:line:col: RULE: message` shape, followed by the fix hint and
//! the finding's fingerprint. Printing the fingerprint is deliberate:
//! an exemption is authored by copying `RULE path fingerprint` straight
//! off the diagnostic into `analyze.allow`, so there is never a reason
//! to compute a hash by hand.
//!
//! The machine form is a schema-versioned JSON document rendered
//! through [`nm_telemetry::report::JsonWriter`], which keeps its
//! conventions (stable key order, `schema_version`, `generator`)
//! identical to every other machine-readable artifact in the
//! workspace.

use crate::Analysis;
use nm_telemetry::report::JsonWriter;

/// Schema version of the JSON findings report.
pub const SCHEMA_VERSION: u64 = 1;

/// Renders the human-readable report. Ends with a one-line summary;
/// clean runs produce just that line.
pub fn render_text(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.path,
            f.line,
            f.col,
            f.rule.as_str(),
            f.message
        ));
        out.push_str(&format!("    hint: {}\n", f.hint));
        out.push_str(&format!(
            "    allow: {} {} {}\n",
            f.rule.as_str(),
            f.path,
            f.fingerprint
        ));
    }
    for e in &analysis.stale {
        out.push_str(&format!(
            "analyze.allow:{}: stale entry `{}` matched nothing — the exempted code changed or moved; delete or re-fingerprint it\n",
            e.line, e
        ));
    }
    let total = analysis.findings.len();
    if analysis.is_clean() {
        out.push_str(&format!(
            "analyze: clean — {} file(s), {} rule(s), {} allowlisted site(s)\n",
            analysis.files_scanned,
            analysis.rules.len(),
            analysis.allowlisted
        ));
    } else {
        let per_rule: Vec<String> = analysis
            .counts()
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("{r}:{n}"))
            .collect();
        out.push_str(&format!(
            "analyze: {} finding(s) [{}], {} stale allowlist entr{} — {} file(s) scanned\n",
            total,
            per_rule.join(" "),
            analysis.stale.len(),
            if analysis.stale.len() == 1 {
                "y"
            } else {
                "ies"
            },
            analysis.files_scanned
        ));
    }
    out
}

/// Renders the schema-versioned JSON findings report.
pub fn render_json(analysis: &Analysis) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema_version");
    w.u64(SCHEMA_VERSION);
    w.key("generator");
    w.string("nm-analyze");
    w.key("rules");
    w.begin_array();
    for r in &analysis.rules {
        w.string(r.as_str());
    }
    w.end_array();
    w.key("files_scanned");
    w.u64(analysis.files_scanned as u64);
    w.key("allowlisted");
    w.u64(analysis.allowlisted as u64);
    w.key("findings");
    w.begin_array();
    for f in &analysis.findings {
        w.begin_object();
        w.key("rule");
        w.string(f.rule.as_str());
        w.key("path");
        w.string(&f.path);
        w.key("line");
        w.u64(u64::from(f.line));
        w.key("col");
        w.u64(u64::from(f.col));
        w.key("message");
        w.string(&f.message);
        w.key("hint");
        w.string(f.hint);
        w.key("fingerprint");
        w.string(&f.fingerprint);
        w.end_object();
    }
    w.end_array();
    w.key("stale_allowlist");
    w.begin_array();
    for e in &analysis.stale {
        w.begin_object();
        w.key("rule");
        w.string(&e.rule);
        w.key("path");
        w.string(&e.path);
        w.key("fingerprint");
        w.string(&e.fingerprint);
        w.key("allow_line");
        w.u64(u64::from(e.line));
        w.end_object();
    }
    w.end_array();
    w.key("summary");
    w.begin_object();
    for (rule, n) in analysis.counts() {
        w.key(rule);
        w.u64(n as u64);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::AllowEntry;
    use crate::rules::{Finding, RuleId};

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                rule: RuleId::D2,
                path: "crates/x/src/lib.rs".to_owned(),
                line: 10,
                col: 7,
                message: "`unwrap()` in library code".to_owned(),
                hint: RuleId::D2.hint(),
                fingerprint: "00112233aabbccdd".to_owned(),
            }],
            stale: vec![AllowEntry {
                rule: "D4".to_owned(),
                path: "crates/y/src/lib.rs".to_owned(),
                fingerprint: "ffeeddccbbaa9988".to_owned(),
                justification: "old".to_owned(),
                line: 4,
            }],
            allowlisted: 2,
            files_scanned: 9,
            rules: RuleId::ALL.to_vec(),
        }
    }

    #[test]
    fn text_report_carries_span_hint_and_copyable_allow_line() {
        let text = render_text(&sample());
        assert!(text.contains("crates/x/src/lib.rs:10:7: D2:"));
        assert!(text.contains("hint:"));
        assert!(text.contains("allow: D2 crates/x/src/lib.rs 00112233aabbccdd"));
        assert!(text.contains("analyze.allow:4: stale entry"));
        assert!(text.contains("1 finding(s) [D2:1], 1 stale allowlist entry"));
    }

    #[test]
    fn clean_run_is_one_summary_line() {
        let clean = Analysis {
            findings: Vec::new(),
            stale: Vec::new(),
            allowlisted: 3,
            files_scanned: 12,
            rules: vec![RuleId::D1, RuleId::D2],
        };
        let text = render_text(&clean);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("clean"));
        assert!(text.contains("3 allowlisted"));
    }

    #[test]
    fn json_report_has_schema_and_stable_fields() {
        let json = render_json(&sample());
        assert!(json.starts_with('{'));
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"generator\": \"nm-analyze\""));
        assert!(json.contains("\"files_scanned\": 9"));
        assert!(json.contains("\"fingerprint\": \"00112233aabbccdd\""));
        assert!(json.contains("\"stale_allowlist\""));
        assert!(json.contains("\"D2\": 1"));
        // Summary is zero-filled for all rules that ran.
        assert!(json.contains("\"D6\": 0"));
    }
}
