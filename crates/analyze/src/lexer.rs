//! A hand-rolled Rust lexer good enough for lint-grade analysis.
//!
//! Produces a flat token stream with accurate `line:col` spans. It is
//! string-, char-, raw-string- and comment-aware (nested block comments
//! included), which is exactly what a lexical rule engine needs: a
//! `partial_cmp` inside a doc comment or a string literal must never
//! trigger a diagnostic. It does *not* build a syntax tree — rules match
//! token patterns plus the test-region map from [`crate::scope`].

/// Where a token starts in its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column, counted in characters.
    pub col: u32,
    /// Byte offset from the start of the file.
    pub offset: usize,
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// String literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`.
    Str,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal (integer or float, any base, with suffixes).
    Num,
    /// A single punctuation character (`.` `:` `(` `=` ...).
    Punct,
}

/// One lexed token: kind, verbatim source text and start position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The exact source text, including quotes and prefixes for literals.
    pub text: String,
    /// Start position.
    pub span: Span,
}

impl Token {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// The content of a string literal with quotes, raw hashes and the
    /// `b`/`r` prefixes stripped and simple escapes (`\"` `\\` `\n` `\r`
    /// `\t` `\0`) decoded. Returns `None` for non-string tokens.
    pub fn str_value(&self) -> Option<String> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let mut rest = self.text.as_str();
        rest = rest.strip_prefix('b').unwrap_or(rest);
        if let Some(raw) = rest.strip_prefix('r') {
            let hashes = raw.chars().take_while(|&c| c == '#').count();
            let inner = &raw[hashes..];
            let inner = inner.strip_prefix('"').unwrap_or(inner);
            let inner = match inner.len().checked_sub(1 + hashes) {
                Some(end) if inner.len() > hashes => &inner[..end],
                _ => inner,
            };
            return Some(inner.to_owned());
        }
        let inner = rest.strip_prefix('"').unwrap_or(rest);
        let inner = inner.strip_suffix('"').unwrap_or(inner);
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => {}
            }
        }
        Some(out)
    }

    /// `true` for a numeric literal that is a *float*: a decimal point
    /// with digits, or a decimal exponent, or an explicit `f32`/`f64`
    /// suffix. Hex/octal/binary literals are never floats.
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Num {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.contains('.')
            || t.ends_with("f32")
            || t.ends_with("f64")
            || t.bytes().any(|b| b == b'e' || b == b'E')
    }
}

/// Cursor over the source with line/column bookkeeping.
struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            bytes: src.as_bytes(),
            offset: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.offset..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.offset..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.offset..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
            offset: self.offset,
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.offset..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream, skipping whitespace and comments.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades to best-effort tokens so the analyzer can still
/// report on the rest of the file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Line comments (`//`, `///`, `//!`).
        if cur.starts_with("//") {
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        // Block comments, nested.
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                if cur.starts_with("/*") {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.starts_with("*/") {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else if cur.bump().is_none() {
                    break;
                }
            }
            continue;
        }
        let span = cur.span();
        // Raw strings and raw identifiers: r"..." r#"..."# r#ident.
        if c == 'r' && matches!(cur.peek2(), Some('"' | '#')) {
            if let Some(tok) = lex_raw_string(&mut cur, span, "r") {
                out.push(tok);
                continue;
            }
            // `r#ident` raw identifier: fall through to ident lexing.
        }
        // Byte strings / byte chars: b"..." br"..." b'x'.
        if c == 'b' {
            let next = cur.peek2();
            if next == Some('"') {
                cur.bump();
                let mut text = String::from("b");
                text.push_str(&lex_quoted(&mut cur, '"'));
                out.push(Token {
                    kind: TokenKind::Str,
                    text,
                    span,
                });
                continue;
            }
            if next == Some('r') && matches!(cur.peek3(), Some('"' | '#')) {
                cur.bump();
                if let Some(mut tok) = lex_raw_string(&mut cur, span, "br") {
                    tok.text.insert(0, 'b');
                    out.push(tok);
                    continue;
                }
            }
            if next == Some('\'') {
                cur.bump();
                let mut text = String::from("b");
                text.push_str(&lex_quoted(&mut cur, '\''));
                out.push(Token {
                    kind: TokenKind::Char,
                    text,
                    span,
                });
                continue;
            }
        }
        // Identifiers and keywords (including `r#ident` handled above).
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else if c == '#' && text == "r" {
                    // Raw identifier `r#type`: keep lexing the name.
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text,
                span,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut prev = '0';
            while let Some(c) = cur.peek() {
                let take = if c.is_ascii_alphanumeric() || c == '_' {
                    true
                } else if c == '.' {
                    // Accept the dot only for `1.5`, not for ranges
                    // (`0..n`) or method calls on literals (`1.max(x)`).
                    !text.contains('.') && matches!(cur.peek2(), Some(d) if d.is_ascii_digit())
                } else {
                    // Exponent signs: `1e-3`, `2.5E+10`.
                    (c == '+' || c == '-') && matches!(prev, 'e' | 'E') && !text.starts_with("0x")
                };
                if !take {
                    break;
                }
                text.push(c);
                prev = c;
                cur.bump();
            }
            out.push(Token {
                kind: TokenKind::Num,
                text,
                span,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            let text = lex_quoted(&mut cur, '"');
            out.push(Token {
                kind: TokenKind::Str,
                text,
                span,
            });
            continue;
        }
        // Lifetimes vs char literals.
        if c == '\'' {
            let looks_like_lifetime =
                matches!(cur.peek2(), Some(c2) if is_ident_start(c2)) && cur.peek3() != Some('\'');
            if looks_like_lifetime {
                let mut text = String::new();
                text.push(c);
                cur.bump();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    span,
                });
            } else {
                let text = lex_quoted(&mut cur, '\'');
                out.push(Token {
                    kind: TokenKind::Char,
                    text,
                    span,
                });
            }
            continue;
        }
        // Everything else: single-character punctuation.
        cur.bump();
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            span,
        });
    }
    out
}

/// Lexes a quoted literal starting at the opening quote, handling
/// backslash escapes. Returns the verbatim text including quotes.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) -> String {
    let mut text = String::new();
    text.push(quote);
    cur.bump();
    while let Some(c) = cur.peek() {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == quote {
            break;
        }
    }
    text
}

/// Lexes a raw string starting at the `r` (already peeked, not yet
/// consumed). Returns `None` when this is actually a raw identifier
/// (`r#ident`), leaving the cursor untouched.
fn lex_raw_string(cur: &mut Cursor<'_>, _span: Span, _prefix: &str) -> Option<Token> {
    // Look ahead: r, then zero or more '#', then '"'. Anything else is
    // not a raw string.
    let rest = &cur.src[cur.offset..];
    let after_r = rest.strip_prefix('r')?;
    let hashes = after_r.chars().take_while(|&c| c == '#').count();
    let after_hashes = &after_r[hashes..];
    if !after_hashes.starts_with('"') {
        return None;
    }
    let span = cur.span();
    let mut text = String::from("r");
    cur.bump(); // r
    for _ in 0..hashes {
        text.push('#');
        cur.bump();
    }
    text.push('"');
    cur.bump(); // opening quote
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', hashes))
        .collect();
    loop {
        if cur.starts_with(&closer) {
            for _ in 0..closer.chars().count() {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            break;
        }
        match cur.bump() {
            Some(c) => text.push(c),
            None => break,
        }
    }
    Some(Token {
        kind: TokenKind::Str,
        text,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let toks = kinds("a // partial_cmp\n/* unwrap() /* nested */ */ b \"panic!\" 'c'");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "\"panic!\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'c'"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r####"r#"raw "quoted" unwrap()"# r#type b"bytes" br##"x"##"####);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert!(toks[0].1.starts_with("r#\""));
        assert_eq!(toks[1], (TokenKind::Ident, "r#type".into()));
        assert_eq!(toks[2].0, TokenKind::Str);
        assert_eq!(toks[2].1, "b\"bytes\"");
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks[3].1, "br##\"x\"##");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("&'a str 'x' '\\n' 'static");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a".into()));
        assert_eq!(toks[3], (TokenKind::Char, "'x'".into()));
        assert_eq!(toks[4], (TokenKind::Char, "'\\n'".into()));
        assert_eq!(toks[5], (TokenKind::Lifetime, "'static".into()));
    }

    #[test]
    fn numbers_ranges_and_floats() {
        let toks = kinds("0..n 1.5 1e-3 0xAE 2.5E+10 1_000 3f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            ["0", "1.5", "1e-3", "0xAE", "2.5E+10", "1_000", "3f64"]
        );
        let lexed = lex("0..n 1.5 1e-3 0xAE");
        assert!(!lexed[0].is_float_literal());
        assert!(lexed
            .iter()
            .any(|t| t.text == "1.5" && t.is_float_literal()));
        assert!(lexed
            .iter()
            .any(|t| t.text == "1e-3" && t.is_float_literal()));
        assert!(lexed
            .iter()
            .all(|t| !(t.text == "0xAE" && t.is_float_literal())));
    }

    #[test]
    fn spans_point_at_the_right_place() {
        let toks = lex("ab\n  cd");
        assert_eq!(
            toks[0].span,
            Span {
                line: 1,
                col: 1,
                offset: 0
            }
        );
        assert_eq!(
            toks[1].span,
            Span {
                line: 2,
                col: 3,
                offset: 5
            }
        );
    }

    #[test]
    fn str_value_strips_quotes_and_decodes() {
        let toks = lex(r#""a\nb" r"raw\n" "trace.records""#);
        assert_eq!(toks[0].str_value().as_deref(), Some("a\nb"));
        assert_eq!(toks[1].str_value().as_deref(), Some("raw\\n"));
        assert_eq!(toks[2].str_value().as_deref(), Some("trace.records"));
    }

    #[test]
    fn method_call_on_float_literal_keeps_the_dot_out() {
        let toks = kinds("1.max(x) 2.0.sqrt()");
        assert_eq!(toks[0], (TokenKind::Num, "1".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "2.0"));
    }
}
