//! The D1–D6 ruleset encoding this repository's reproducibility
//! invariants.
//!
//! | id | invariant |
//! |----|-----------|
//! | D1 | float ordering goes through `total_cmp`: no `partial_cmp` call sites, no `==`/`!=` against float literals |
//! | D2 | panic-freedom in library code: no `.unwrap()` / `.expect()` / `panic!` family outside tests/benches |
//! | D3 | no wall clocks in result-producing crates: `Instant::now` / `SystemTime` live in `nm-telemetry` only |
//! | D4 | no `HashMap`/`HashSet` in library code: iteration order feeds output paths, use `BTreeMap`/`BTreeSet` |
//! | D5 | all parallelism goes through the bounded executor: no thread spawns outside `nm-sweep` |
//! | D6 | every telemetry name literal (and `names.rs` const) appears in `telemetry_names.txt`, and vice versa |
//!
//! Rules are lexical: they match token patterns from [`crate::lexer`]
//! scoped by [`crate::scope`]. What a lexical pass cannot prove (a
//! `HashMap` that is genuinely never iterated, a documented panicking
//! wrapper) is exempted per site through the fingerprinted
//! [`crate::allowlist`], never silently.

use crate::allowlist::fingerprint;
use crate::scope::{FileKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Float ordering must use `total_cmp`.
    D1,
    /// No panics in library code.
    D2,
    /// No wall clocks outside `nm-telemetry`.
    D3,
    /// No hash-ordered containers in library code.
    D4,
    /// No thread spawns outside `nm-sweep`.
    D5,
    /// Telemetry names match the committed manifest.
    D6,
}

impl RuleId {
    /// Every rule, in id order.
    pub const ALL: [RuleId; 6] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
    ];

    /// The stable textual id (`"D1"` ...).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
        }
    }

    /// Parses `"D1"` ... `"D6"` (case-insensitive).
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.as_str().eq_ignore_ascii_case(name))
    }

    /// One-line description for `--help`-ish output and reports.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "float ordering must use total_cmp (no partial_cmp, no == on float literals)"
            }
            RuleId::D2 => "no unwrap()/expect()/panic! in library code",
            RuleId::D3 => "no Instant::now/SystemTime outside nm-telemetry",
            RuleId::D4 => {
                "no HashMap/HashSet in library code (iteration order is nondeterministic)"
            }
            RuleId::D5 => "no thread spawns outside the bounded nm-sweep executor",
            RuleId::D6 => "telemetry names must match telemetry_names.txt (both directions)",
        }
    }

    /// The fix hint attached to this rule's findings.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::D1 => "use f64::total_cmp for ordering, or compare with an explicit tolerance; allowlist exact-representation checks",
            RuleId::D2 => "return a typed error (try_* API), recover (unwrap_or_else), or allowlist a documented invariant",
            RuleId::D3 => "route timing through nm_telemetry::Stopwatch so result paths never read a wall clock",
            RuleId::D4 => "use BTreeMap/BTreeSet, or sort before iterating and allowlist the site with a justification",
            RuleId::D5 => "fan work into nm_sweep::ParallelSweep; it bounds workers and keeps reduction order deterministic",
            RuleId::D6 => "add the name to telemetry_names.txt, or fix the typo'd literal / dead manifest entry",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found, specifically.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// The allowlist fingerprint of this finding.
    pub fingerprint: String,
}

impl Finding {
    fn new(rule: RuleId, file: &SourceFile, line: u32, col: u32, message: String) -> Self {
        Finding {
            rule,
            path: file.rel_path.clone(),
            line,
            col,
            message,
            hint: rule.hint(),
            fingerprint: fingerprint(rule.as_str(), file.line(line)),
        }
    }
}

/// Telemetry function names whose first argument is a metric/span/note
/// name (matched only behind a `*telemetry::` path qualifier).
const TELEMETRY_NAME_FNS: [&str; 8] = [
    "span",
    "counter_add",
    "counter_inc",
    "counter_value",
    "set_gauge",
    "set_note",
    "observe_seconds",
    "observe",
];

/// Cross-file state for D6: the manifest and which names were seen.
#[derive(Debug, Default)]
pub struct ManifestState {
    /// Manifest name -> 1-based line in `telemetry_names.txt`.
    pub names: BTreeMap<String, u32>,
    /// Names referenced by a scanned literal or `names.rs` const.
    pub used: BTreeSet<String>,
}

impl ManifestState {
    /// Parses the manifest text (one name per line, `#` comments).
    pub fn parse(text: &str) -> Self {
        let mut names = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let name = raw.trim();
            if name.is_empty() || name.starts_with('#') {
                continue;
            }
            names.entry(name.to_owned()).or_insert(idx as u32 + 1);
        }
        ManifestState {
            names,
            used: BTreeSet::new(),
        }
    }

    /// Findings for manifest entries no scanned file references: the
    /// "other side" of the D6 loop. `manifest_path` is the
    /// workspace-relative path the findings should point at.
    pub fn dead_entries(&self, manifest_path: &str) -> Vec<Finding> {
        self.names
            .iter()
            .filter(|(name, _)| !self.used.contains(*name))
            .map(|(name, &line)| Finding {
                rule: RuleId::D6,
                path: manifest_path.to_owned(),
                line,
                col: 1,
                message: format!(
                    "manifest name {name:?} is referenced by no telemetry call site or names module"
                ),
                hint: RuleId::D6.hint(),
                fingerprint: fingerprint(RuleId::D6.as_str(), name),
            })
            .collect()
    }
}

/// Whether `rule` scans `file` at all, given this workspace's layout.
fn in_scope(rule: RuleId, file: &SourceFile) -> bool {
    let dir = file.crate_dir();
    match file.kind {
        FileKind::Test => false,
        FileKind::Bench | FileKind::Example => matches!(rule, RuleId::D5 | RuleId::D6),
        FileKind::Source => match rule {
            RuleId::D1 => true,
            // The bench harness crate writes artifacts and may assert;
            // panic-freedom is a library-crate contract.
            RuleId::D2 => dir != "crates/bench",
            // Timing is nm-telemetry's job; the bench harness measures.
            RuleId::D3 => dir != "crates/telemetry" && dir != "crates/bench",
            RuleId::D4 => true,
            RuleId::D5 => dir != "crates/sweep",
            RuleId::D6 => true,
        },
    }
}

/// Runs every enabled rule over one file.
pub fn scan_file(
    file: &SourceFile,
    rules: &[RuleId],
    manifest: &mut ManifestState,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let enabled = |r: RuleId| rules.contains(&r) && in_scope(r, file);
    let toks = &file.tokens;

    for i in 0..toks.len() {
        if file.is_test_token(i) {
            continue;
        }
        let t = &toks[i];
        let at = |msg: String, rule: RuleId| Finding::new(rule, file, t.span.line, t.span.col, msg);

        // D1: `partial_cmp` call sites (not trait-impl definitions).
        if enabled(RuleId::D1)
            && t.is_ident("partial_cmp")
            && !matches!(prev_tok(toks, i, 1), Some(p) if p.is_ident("fn"))
        {
            out.push(at(
                "partial_cmp on floats is NaN-unsound for ordering; use total_cmp".into(),
                RuleId::D1,
            ));
        }
        // D1: `== 1.5` / `!= 0.0` float-literal equality.
        if enabled(RuleId::D1) && t.is_float_literal() && float_literal_compared(toks, i) {
            out.push(at(
                format!("equality comparison against float literal `{}`", t.text),
                RuleId::D1,
            ));
        }
        // D2: `.unwrap()` / `.expect(` and the panicking macros.
        if enabled(RuleId::D2) {
            let method = (t.is_ident("unwrap") || t.is_ident("expect"))
                && matches!(prev_tok(toks, i, 1), Some(p) if p.is_punct('.'))
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('('));
            let mac = ["panic", "unreachable", "todo", "unimplemented"]
                .iter()
                .any(|m| t.is_ident(m))
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('!'));
            if method {
                out.push(at(format!(".{}() in library code", t.text), RuleId::D2));
            } else if mac {
                out.push(at(format!("{}! in library code", t.text), RuleId::D2));
            }
        }
        // D3: `Instant::now` and any `SystemTime`.
        if enabled(RuleId::D3) {
            if t.is_ident("Instant")
                && matches!(toks.get(i + 1), Some(a) if a.is_punct(':'))
                && matches!(toks.get(i + 2), Some(b) if b.is_punct(':'))
                && matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
            {
                out.push(at("Instant::now outside nm-telemetry".into(), RuleId::D3));
            }
            if t.is_ident("SystemTime") {
                out.push(at("SystemTime outside nm-telemetry".into(), RuleId::D3));
            }
        }
        // D4: hash-ordered containers.
        if enabled(RuleId::D4) && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            out.push(at(
                format!("{} has nondeterministic iteration order", t.text),
                RuleId::D4,
            ));
        }
        // D5: thread creation outside the executor.
        if enabled(RuleId::D5) {
            let qualified = t.is_ident("thread")
                && matches!(toks.get(i + 1), Some(a) if a.is_punct(':'))
                && matches!(toks.get(i + 2), Some(b) if b.is_punct(':'))
                && matches!(toks.get(i + 3), Some(n) if n.is_ident("spawn") || n.is_ident("scope"));
            let method = t.is_ident("spawn")
                && matches!(prev_tok(toks, i, 1), Some(p) if p.is_punct('.'))
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('('));
            if qualified {
                out.push(at(
                    "thread creation outside nm-sweep's bounded executor".into(),
                    RuleId::D5,
                ));
            } else if method {
                out.push(at(
                    ".spawn() outside nm-sweep's bounded executor".into(),
                    RuleId::D5,
                ));
            }
        }
        // D6: literal names at `*telemetry::fn("name", ...)` call sites.
        if enabled(RuleId::D6)
            && TELEMETRY_NAME_FNS.iter().any(|f| t.is_ident(f))
            && matches!(prev_tok(toks, i, 1), Some(a) if a.is_punct(':'))
            && matches!(prev_tok(toks, i, 2), Some(b) if b.is_punct(':'))
            && matches!(prev_tok(toks, i, 3), Some(q) if q.kind == crate::lexer::TokenKind::Ident
                && q.text.ends_with("telemetry"))
            && matches!(toks.get(i + 1), Some(n) if n.is_punct('('))
        {
            if let Some(name) = toks.get(i + 2).and_then(|a| a.str_value()) {
                if manifest.names.contains_key(&name) {
                    manifest.used.insert(name);
                } else {
                    out.push(at(
                        format!("telemetry name {name:?} is not in telemetry_names.txt"),
                        RuleId::D6,
                    ));
                }
            }
        }
        // D6: consts in a `names.rs` module must match the manifest.
        if enabled(RuleId::D6)
            && file.rel_path.ends_with("/names.rs")
            && t.is_ident("const")
            && !file.is_test_token(i)
        {
            if let Some(name_tok) = names_const_value(toks, i) {
                if let Some(name) = name_tok.str_value() {
                    if manifest.names.contains_key(&name) {
                        manifest.used.insert(name);
                    } else {
                        out.push(Finding::new(
                            RuleId::D6,
                            file,
                            name_tok.span.line,
                            name_tok.span.col,
                            format!("names-module const {name:?} is not in telemetry_names.txt"),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// The `n`-th token before `i`, if any.
fn prev_tok(toks: &[crate::lexer::Token], i: usize, n: usize) -> Option<&crate::lexer::Token> {
    i.checked_sub(n).map(|j| &toks[j])
}

/// `true` when the float literal at `i` is an operand of `==` or `!=`
/// (an optional unary minus between the operator and the literal is
/// looked through).
fn float_literal_compared(toks: &[crate::lexer::Token], i: usize) -> bool {
    // `... == 1.5` / `... != -1.5`: look left, over one optional '-'.
    let mut j = i;
    if matches!(prev_tok(toks, j, 1), Some(p) if p.is_punct('-')) {
        j -= 1;
    }
    let left = matches!(prev_tok(toks, j, 1), Some(e) if e.is_punct('='))
        && matches!(prev_tok(toks, j, 2), Some(p) if p.is_punct('=') || p.is_punct('!'))
        // Exclude `<=` / `>=` (ordering, not equality) and plain `=`.
        && !matches!(prev_tok(toks, j, 2), Some(p) if p.is_punct('<') || p.is_punct('>'));
    // `1.5 == ...`: look right.
    let right = matches!(toks.get(i + 1), Some(p) if p.is_punct('=') || p.is_punct('!'))
        && matches!(toks.get(i + 2), Some(e) if e.is_punct('='));
    left || right
}

/// For `const NAME: &str = "value";` starting at the `const` keyword,
/// the string token holding the value (searched up to the terminating
/// `;`).
fn names_const_value(
    toks: &[crate::lexer::Token],
    const_idx: usize,
) -> Option<&crate::lexer::Token> {
    for t in toks.iter().skip(const_idx + 1).take(12) {
        if t.is_punct(';') {
            return None;
        }
        if t.kind == crate::lexer::TokenKind::Str {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let mut manifest = ManifestState::parse("eval.surface_hit\n");
        scan_file(&file, &RuleId::ALL, &mut manifest)
    }

    fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_flags_calls_not_definitions() {
        let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }\nimpl P for T { fn partial_cmp(&self, o: &T) -> O { x } }";
        let found = scan("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&found), [RuleId::D1]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn d1_flags_float_literal_equality_both_sides() {
        let found = scan(
            "crates/x/src/lib.rs",
            "fn f(x: f64) -> bool { x == 0.0 || 1.5 != x || x == -2.5 }",
        );
        assert_eq!(rules_of(&found), [RuleId::D1, RuleId::D1, RuleId::D1]);
        // Ordering comparisons and integer equality stay silent.
        assert!(scan(
            "crates/x/src/lib.rs",
            "fn f(x: f64, n: u32) -> bool { x >= 1.5 && x < 2.0 && n == 3 }"
        )
        .is_empty());
    }

    #[test]
    fn d2_flags_methods_and_macros_but_not_variants() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); unreachable!(); z.unwrap_or(0); w.unwrap_or_else(|p| p); }";
        let found = scan("crates/x/src/lib.rs", src);
        assert_eq!(
            rules_of(&found),
            [RuleId::D2, RuleId::D2, RuleId::D2, RuleId::D2]
        );
    }

    #[test]
    fn d3_and_d5_fire_outside_their_home_crates() {
        let src = "fn f() { let t = Instant::now(); std::thread::spawn(|| {}); s.spawn(|| {}); }";
        let found = scan("crates/core/src/lib.rs", src);
        assert_eq!(rules_of(&found), [RuleId::D3, RuleId::D5, RuleId::D5]);
        // nm-sweep may spawn; nm-telemetry may read clocks.
        assert!(scan(
            "crates/sweep/src/lib.rs",
            "fn f() { std::thread::spawn(|| {}); }"
        )
        .is_empty());
        assert!(scan("crates/telemetry/src/span.rs", "fn f() { Instant::now(); }").is_empty());
    }

    #[test]
    fn d4_flags_hash_containers() {
        let found = scan(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }",
        );
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.rule == RuleId::D4));
    }

    #[test]
    fn d6_checks_call_sites_and_names_modules() {
        let src = "fn f() { nm_telemetry::counter_inc(\"eval.surface_hit\"); nm_telemetry::counter_inc(\"eval.typo\"); }";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut manifest = ManifestState::parse("eval.surface_hit\neval.dead\n");
        let found = scan_file(&file, &RuleId::ALL, &mut manifest);
        assert_eq!(rules_of(&found), [RuleId::D6]);
        assert!(found[0].message.contains("eval.typo"));
        assert!(manifest.used.contains("eval.surface_hit"));
        let dead = manifest.dead_entries("telemetry_names.txt");
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("eval.dead"));
        assert_eq!(dead[0].line, 2);

        let names_src =
            "pub const HIT: &str = \"eval.surface_hit\";\npub const BAD: &str = \"eval.bogus\";";
        let names_file = SourceFile::parse("crates/x/src/names.rs", names_src);
        let mut manifest = ManifestState::parse("eval.surface_hit\n");
        let found = scan_file(&names_file, &RuleId::ALL, &mut manifest);
        assert_eq!(rules_of(&found), [RuleId::D6]);
        assert!(found[0].message.contains("eval.bogus"));
    }

    #[test]
    fn dynamic_names_and_unqualified_calls_are_ignored() {
        let src = "fn f(h: &str) { nm_telemetry::observe_seconds(h, 0.1); other::span(\"free\"); span(\"free\"); }";
        let file = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut manifest = ManifestState::parse("");
        assert!(scan_file(&file, &RuleId::ALL, &mut manifest).is_empty());
    }

    #[test]
    fn test_regions_and_test_files_are_silent() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); a.partial_cmp(&b); } }";
        assert!(scan("crates/x/src/lib.rs", src).is_empty());
        assert!(scan("crates/x/tests/it.rs", "fn t() { x.unwrap(); }").is_empty());
        // Benches: D2/D3 do not apply, D5 does.
        let bench = "fn b() { let t = Instant::now(); x.unwrap(); std::thread::spawn(|| {}); }";
        let found = scan("crates/bench/benches/b.rs", bench);
        assert_eq!(rules_of(&found), [RuleId::D5]);
    }
}
