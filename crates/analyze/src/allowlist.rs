//! The fingerprinted per-site exemption file (`analyze.allow`).
//!
//! One line per exemption:
//!
//! ```text
//! D2 crates/opt/src/pareto.rs 6b0cdb25fe3a41cc  # justification text
//! ```
//!
//! The fingerprint is an FNV-1a 64 hash of the rule id plus the
//! *whitespace-normalized source line* the finding sits on. Line numbers
//! are deliberately not part of the key, so exempted code may move
//! within its file — but the moment the line's text changes (or the
//! file is renamed) the entry stops matching and the analyzer reports
//! it as **stale**, failing the run. Stale entries must be deleted or
//! re-fingerprinted, which is the point: exemptions never outlive the
//! code they were written for.

use std::fmt;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id (`D1` ... `D6`).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 16-hex-digit FNV-1a 64 fingerprint.
    pub fingerprint: String,
    /// The justification following `#`, trimmed ("" when absent).
    pub justification: String,
    /// 1-based line in the allowlist file (for stale diagnostics).
    pub line: u32,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.rule, self.path, self.fingerprint)
    }
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line number.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze.allow:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowParseError {}

/// Parses the allowlist text. Blank lines and `#`-first lines are
/// comments.
///
/// # Errors
///
/// Returns the first malformed entry (wrong field count or a
/// fingerprint that is not 16 hex digits).
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowParseError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (entry, comment) = match line.split_once('#') {
            Some((e, c)) => (e.trim(), c.trim()),
            None => (line, ""),
        };
        let fields: Vec<&str> = entry.split_whitespace().collect();
        let [rule, path, fingerprint] = fields[..] else {
            return Err(AllowParseError {
                line: line_no,
                message: format!(
                    "expected `RULE path fingerprint  # justification`, got {} field(s)",
                    fields.len()
                ),
            });
        };
        if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(AllowParseError {
                line: line_no,
                message: format!("fingerprint {fingerprint:?} is not 16 hex digits"),
            });
        }
        out.push(AllowEntry {
            rule: rule.to_owned(),
            path: path.to_owned(),
            fingerprint: fingerprint.to_ascii_lowercase(),
            justification: comment.to_owned(),
            line: line_no,
        });
    }
    Ok(out)
}

/// The fingerprint of a finding: FNV-1a 64 over the rule id, a NUL, and
/// the whitespace-normalized source line, rendered as 16 lowercase hex
/// digits.
pub fn fingerprint(rule: &str, source_line: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    feed(rule.as_bytes());
    feed(&[0]);
    let mut last_space = true;
    for c in source_line.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                feed(b" ");
            }
            last_space = true;
        } else {
            let mut buf = [0u8; 4];
            feed(c.encode_utf8(&mut buf).as_bytes());
            last_space = false;
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_comments_and_justifications() {
        let text = "\
# header comment

D2 crates/opt/src/pareto.rs 0123456789abcdef  # first element always kept
D4 crates/geometry/src/cache.rs fedcba9876543210
";
        let entries = parse(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "D2");
        assert_eq!(entries[0].justification, "first element always kept");
        assert_eq!(entries[0].line, 3);
        assert_eq!(entries[1].justification, "");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("D2 only-two-fields").is_err());
        assert!(parse("D2 path not-hex-not-16").is_err());
        let err = parse("\n\nbad line here also extra").expect_err("fails");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn fingerprint_normalizes_whitespace_but_not_content() {
        let a = fingerprint("D2", "  x.expect(\"lock\")  ;");
        let b = fingerprint("D2", "x.expect(\"lock\") ;");
        let c = fingerprint("D2", "x.expect(\"other\");");
        let d = fingerprint("D1", "x.expect(\"lock\") ;");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 16);
    }
}
