//! File classification and `#[cfg(test)]` region detection.
//!
//! Rules do not see raw token streams: they see a [`SourceFile`] that
//! knows its path-derived role in the workspace (library source, bench,
//! the bench-harness crate, ...) and, per token, whether it sits inside
//! a test-only region (`#[cfg(test)] mod ... { ... }`, `#[test] fn`).

use crate::lexer::{lex, Token};

/// Path-derived role of a source file in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary source under a `src/` directory.
    Source,
    /// A Criterion-style benchmark under a `benches/` directory.
    Bench,
    /// Example code under `examples/`.
    Example,
    /// Integration tests under a `tests/` directory (never scanned by
    /// the default walker, but classified for completeness).
    Test,
}

/// A lexed source file plus everything rules need to scope themselves.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, with forward slashes.
    pub rel_path: String,
    /// Path-derived role.
    pub kind: FileKind,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is `true` when `tokens[i]` lies inside a
    /// `#[cfg(test)]` / `#[test]` region.
    in_test: Vec<bool>,
    /// Source lines, for diagnostics and fingerprints.
    lines: Vec<String>,
}

impl SourceFile {
    /// Lexes `src` and computes test regions.
    pub fn parse(rel_path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let in_test = test_regions(&tokens);
        SourceFile {
            rel_path: rel_path.to_owned(),
            kind: classify(rel_path),
            tokens,
            in_test,
            lines: src.lines().map(str::to_owned).collect(),
        }
    }

    /// `true` when token `i` is inside a test-only region.
    pub fn is_test_token(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// The 1-based source line, trimmed, for diagnostics ("" if out of
    /// range).
    pub fn line(&self, line: u32) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i as usize))
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// The crate-ish prefix of the path: `crates/<name>` for workspace
    /// crates, `src` for the root binary, the first component otherwise.
    pub fn crate_dir(&self) -> &str {
        let p = &self.rel_path;
        if let Some(rest) = p.strip_prefix("crates/") {
            let end = rest.find('/').map(|i| i + 7).unwrap_or(p.len());
            &p[..end]
        } else {
            let end = p.find('/').unwrap_or(p.len());
            &p[..end]
        }
    }
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileKind {
    let has = |dir: &str| {
        rel_path.starts_with(&format!("{dir}/")) || rel_path.contains(&format!("/{dir}/"))
    };
    if has("tests") {
        FileKind::Test
    } else if has("benches") {
        FileKind::Bench
    } else if has("examples") {
        FileKind::Example
    } else {
        FileKind::Source
    }
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item.
///
/// Recognises an attribute whose tokens contain the ident `test` inside
/// a `cfg(...)` (covers `#[cfg(test)]`, `#[cfg(all(test, ...))]`) or
/// that is exactly `#[test]`, then marks the attribute and the item it
/// decorates — up to the matching `}` of the item's block, or the first
/// top-level `;` for block-less items like `use`.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Collect the attribute's token range [i, close].
        let Some(close) = matching_bracket(tokens, i + 1) else {
            break;
        };
        if !attr_is_test(&tokens[i + 2..close]) {
            i = close + 1;
            continue;
        }
        // Mark the attribute, any further attributes, and the item body.
        let mut j = close + 1;
        // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod t {`).
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && matches!(tokens.get(j + 1), Some(t) if t.is_punct('['))
        {
            match matching_bracket(tokens, j + 1) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // Find the end of the decorated item.
        let mut end = j;
        while end < tokens.len() {
            if tokens[end].is_punct(';') {
                break;
            }
            if tokens[end].is_punct('{') {
                end = matching_brace(tokens, end).unwrap_or(tokens.len() - 1);
                break;
            }
            end += 1;
        }
        let end = end.min(tokens.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// `true` when the attribute token slice marks test-only code.
fn attr_is_test(attr: &[Token]) -> bool {
    // Exactly `test` (i.e. `#[test]`).
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    // `cfg( ... test ... )` with `test` as a bare ident somewhere inside.
    if attr.first().map(|t| t.is_ident("cfg")) == Some(true) {
        return attr.iter().any(|t| t.is_ident("test"));
    }
    false
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked_to_its_closing_brace() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(unwraps, [false, true]);
        // Code after the test module is live again.
        let tail = f.tokens.iter().position(|t| t.is_ident("tail"));
        assert!(matches!(tail, Some(i) if !f.is_test_token(i)));
    }

    #[test]
    fn test_attr_on_fn_and_stacked_attrs() {
        let src = "#[test]\n#[allow(dead_code)]\nfn check() { a.expect(\"x\"); }\nfn live() { b.expect(\"y\"); }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let expects: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("expect"))
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(expects, [true, false]);
    }

    #[test]
    fn cfg_feature_is_not_a_test_region() {
        let src = "#[cfg(feature = \"faultinject\")]\nfn inject() { panic!(\"boom\"); }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let panic_idx = f.tokens.iter().position(|t| t.is_ident("panic"));
        assert!(matches!(panic_idx, Some(i) if !f.is_test_token(i)));
    }

    #[test]
    fn cfg_test_use_item_ends_at_semicolon() {
        let src =
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { let _ = HashMap::new(); }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let maps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("HashMap"))
            .map(|(i, _)| f.is_test_token(i))
            .collect();
        assert_eq!(maps, [true, false]);
    }

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/core/src/lib.rs"), FileKind::Source);
        assert_eq!(classify("crates/core/tests/golden.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/cold_path.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("examples/demo.rs"), FileKind::Example);
        assert_eq!(classify("src/main.rs"), FileKind::Source);
    }

    #[test]
    fn crate_dir_extraction() {
        let f = SourceFile::parse("crates/sweep/src/lib.rs", "");
        assert_eq!(f.crate_dir(), "crates/sweep");
        let f = SourceFile::parse("src/main.rs", "");
        assert_eq!(f.crate_dir(), "src");
    }
}
