//! # nm-analyze — workspace-wide determinism & safety lint engine
//!
//! The reproduction's credibility rests on invariants the compiler
//! cannot see: byte-identical golden tables for any worker count,
//! NaN-safe `total_cmp` ordering in every Pareto merge, panic-freedom in
//! library crates, all parallelism routed through the bounded
//! `ParallelSweep` executor, and telemetry names that never silently
//! fork a time series. This crate makes those invariants machine-checked
//! before merge.
//!
//! It is a **zero-dependency static-analysis pass** over the workspace
//! source: a hand-rolled Rust lexer ([`lexer`]) produces a token stream
//! with accurate `file:line:col` spans (string-, char- and
//! comment-aware); [`scope`] classifies files and masks `#[cfg(test)]`
//! regions; [`rules`] implements the D1–D6 ruleset; [`allowlist`] grants
//! fingerprinted per-site exemptions that go stale loudly when the code
//! they exempt changes.
//!
//! The CLI surface is `nmcache analyze [--json <path>] [--rules <ids>]`,
//! mapping findings to the documented exit-code discipline (0 clean /
//! 3 findings / 2 usage). The JSON report is rendered through the
//! `nm-telemetry` report writer, so its schema conventions
//! (`schema_version`, `generator`, stable key order) match every other
//! machine-readable artifact in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;

use allowlist::AllowEntry;
use rules::{Finding, ManifestState, RuleId};
use scope::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// What to analyze and against which side files.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; paths in diagnostics are relative to it.
    pub root: PathBuf,
    /// Rules to run (defaults to all six).
    pub rules: Vec<RuleId>,
    /// Telemetry-name manifest, relative to `root` when not absolute.
    pub manifest_path: PathBuf,
    /// Allowlist file, relative to `root` when not absolute.
    pub allow_path: PathBuf,
}

impl Config {
    /// The standard configuration for a workspace root: all rules,
    /// `telemetry_names.txt` and `analyze.allow` at the root.
    pub fn for_root(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            rules: RuleId::ALL.to_vec(),
            manifest_path: PathBuf::from("telemetry_names.txt"),
            allow_path: PathBuf::from("analyze.allow"),
        }
    }

    fn resolve(&self, p: &Path) -> PathBuf {
        if p.is_absolute() {
            p.to_owned()
        } else {
            self.root.join(p)
        }
    }
}

/// The outcome of an analysis run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing — failures in their own
    /// right: the code they exempted moved or changed.
    pub stale: Vec<AllowEntry>,
    /// How many findings an allowlist entry suppressed.
    pub allowlisted: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The rules that ran.
    pub rules: Vec<RuleId>,
}

impl Analysis {
    /// `true` when there is nothing to report: no findings and no stale
    /// allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }

    /// Finding counts per rule (zero-filled for every rule that ran).
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut map: BTreeMap<&'static str, usize> =
            self.rules.iter().map(|r| (r.as_str(), 0)).collect();
        for f in &self.findings {
            *map.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        map
    }
}

/// A failure to run the analysis at all (as opposed to findings).
#[derive(Debug)]
pub enum AnalyzeError {
    /// Reading a source file, the manifest or the allowlist failed.
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The allowlist file is malformed.
    Allow(allowlist::AllowParseError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Io { path, source } => {
                write!(f, "analyze: {}: {source}", path.display())
            }
            AnalyzeError::Allow(e) => write!(f, "analyze: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl AnalyzeError {
    /// `true` when the failure is an I/O problem (CLI exit 5) rather
    /// than a malformed side file (CLI exit 2).
    pub fn is_io(&self) -> bool {
        matches!(self, AnalyzeError::Io { .. })
    }
}

/// Directories the walker never descends into.
const SKIP_DIRS: [&str; 4] = ["target", "shims", ".git", "tests"];

/// Collects every `.rs` file under `root` (skipping `target/`, vendored
/// `shims/`, `tests/` directories and VCS internals), sorted by relative
/// path for deterministic reports.
fn collect_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, AnalyzeError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_owned()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|source| AnalyzeError::Io {
            path: dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| AnalyzeError::Io {
                path: dir.clone(),
                source,
            })?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the configured rules over the workspace.
///
/// # Errors
///
/// [`AnalyzeError`] when a file cannot be read or the allowlist cannot
/// be parsed. Findings are *not* errors — they come back in the
/// [`Analysis`].
pub fn analyze(config: &Config) -> Result<Analysis, AnalyzeError> {
    let manifest_file = config.resolve(&config.manifest_path);
    let manifest_rel = rel_display(&config.manifest_path);
    let mut manifest = if config.rules.contains(&RuleId::D6) {
        let text = std::fs::read_to_string(&manifest_file).map_err(|source| AnalyzeError::Io {
            path: manifest_file.clone(),
            source,
        })?;
        ManifestState::parse(&text)
    } else {
        ManifestState::default()
    };

    let allow_file = config.resolve(&config.allow_path);
    let allow_entries = match std::fs::read_to_string(&allow_file) {
        Ok(text) => allowlist::parse(&text).map_err(AnalyzeError::Allow)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(source) => {
            return Err(AnalyzeError::Io {
                path: allow_file,
                source,
            })
        }
    };

    let sources = collect_sources(&config.root)?;
    let files_scanned = sources.len();
    let mut raw: Vec<Finding> = Vec::new();
    for (rel, path) in &sources {
        let text = std::fs::read_to_string(path).map_err(|source| AnalyzeError::Io {
            path: path.clone(),
            source,
        })?;
        let file = SourceFile::parse(rel, &text);
        raw.extend(rules::scan_file(&file, &config.rules, &mut manifest));
    }
    if config.rules.contains(&RuleId::D6) {
        raw.extend(manifest.dead_entries(&manifest_rel));
    }

    // Apply the allowlist: a finding is suppressed when an entry matches
    // its (rule, path, fingerprint); entries that suppress nothing are
    // stale and reported as failures.
    let mut matched = vec![0usize; allow_entries.len()];
    let mut findings = Vec::new();
    let mut allowlisted = 0usize;
    for f in raw {
        let hit = allow_entries.iter().position(|e| {
            e.rule == f.rule.as_str() && e.path == f.path && e.fingerprint == f.fingerprint
        });
        match hit {
            Some(i) => {
                matched[i] += 1;
                allowlisted += 1;
            }
            None => findings.push(f),
        }
    }
    let stale: Vec<AllowEntry> = allow_entries
        .iter()
        .zip(&matched)
        .filter(|(_, &n)| n == 0)
        .map(|(e, _)| e.clone())
        .collect();

    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(Analysis {
        findings,
        stale,
        allowlisted,
        files_scanned,
        rules: config.rules.clone(),
    })
}

/// A workspace-relative path as a forward-slash string.
fn rel_display(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
