//! The device-technology axis: what kind of memory cell a cache level is
//! built from.
//!
//! The paper studies one technology — BPTM-65 SRAM — so the original
//! engine hard-wired "a cache is SRAM at one node". Multi-level studies
//! past L2 want a *per-level* choice (an eDRAM or STT-MRAM L3 behind SRAM
//! L1/L2), which this module supplies in two forms:
//!
//! * [`DeviceTechnology`] — the trait describing a memory technology: its
//!   electrical base (a [`TechnologyNode`] for the CMOS periphery and the
//!   knob-dependent Eq.1/Eq.2 surfaces) plus the cell-array transforms
//!   that distinguish it from the SRAM baseline (read/write energy
//!   asymmetry, leakage scaling, refresh power as a static-power term,
//!   latency and density factors).
//! * [`TechProfile`] — the concrete, comparable, serializable handle the
//!   spec and geometry layers carry. Profiles are plain data so a
//!   `HierarchySpec` stays a pure memo key; every trait impl renders one
//!   via [`DeviceTechnology::profile`].
//!
//! The SRAM baseline is the **identity** profile: every scale is exactly
//! 1 and refresh power is exactly 0, and consumers short-circuit on
//! [`TechProfile::is_identity`], so an all-SRAM study is bit-for-bit the
//! pre-refactor computation.
//!
//! The eDRAM and STT-MRAM parameter tables are expressed as ratios to a
//! high-density SRAM reference (read/write pJ per access, static mW/MB,
//! relative latency and area from published cache-technology surveys);
//! only the ratios enter the model, so they compose with any base node.

use crate::tech::TechnologyNode;
use crate::units::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory technology a cache level can be built from.
///
/// Implementations pair an electrical base node (the CMOS the periphery
/// and knob sweeps are evaluated in) with the multiplicative transforms
/// that map an SRAM cell array's metrics onto this technology's array.
/// All transform methods default to the SRAM identity.
pub trait DeviceTechnology {
    /// Short machine-readable name (`"sram"`, `"edram"`, `"stt-mram"`).
    fn name(&self) -> &str;

    /// The electrical base node: periphery devices, knob ranges and the
    /// Eq.1/Eq.2 primitive surfaces are evaluated against it. Hoisted
    /// [`PrimsTable`](crate::prims::PrimsTable)s are cached per node, so
    /// technologies sharing a base share one table.
    fn node(&self) -> &TechnologyNode;

    /// Array read-energy multiplier relative to the SRAM baseline.
    fn read_energy_scale(&self) -> f64 {
        1.0
    }

    /// Array write-energy multiplier relative to the SRAM baseline
    /// (STT-MRAM's write asymmetry lives here).
    fn write_energy_scale(&self) -> f64 {
        1.0
    }

    /// Array leakage multiplier relative to the SRAM baseline (applied to
    /// every leakage component of the cell array).
    fn leakage_scale(&self) -> f64 {
        1.0
    }

    /// Refresh power per stored bit — a knob-independent static-power
    /// term charged to the cell array (0 for non-volatile and static
    /// cells).
    fn refresh_power_per_bit(&self) -> Watts {
        Watts(0.0)
    }

    /// Array access-delay multiplier relative to the SRAM baseline.
    fn delay_scale(&self) -> f64 {
        1.0
    }

    /// Array area multiplier relative to the SRAM baseline (density).
    fn area_scale(&self) -> f64 {
        1.0
    }

    /// Renders the concrete, comparable [`TechProfile`] handle of this
    /// technology (the form the spec and geometry layers carry).
    fn profile(&self) -> TechProfile {
        TechProfile {
            name: self.name().to_owned(),
            read_energy_scale: self.read_energy_scale(),
            write_energy_scale: self.write_energy_scale(),
            leakage_scale: self.leakage_scale(),
            refresh_power_per_bit: self.refresh_power_per_bit(),
            delay_scale: self.delay_scale(),
            area_scale: self.area_scale(),
        }
    }
}

/// The BPTM-65 SRAM baseline — the paper's technology, as a
/// [`DeviceTechnology`] impl. Every transform is the identity.
#[derive(Debug, Clone, PartialEq)]
pub struct SramBptm65 {
    node: TechnologyNode,
}

impl SramBptm65 {
    /// The standard baseline over [`TechnologyNode::bptm65`].
    pub fn new() -> Self {
        SramBptm65 {
            node: TechnologyNode::bptm65(),
        }
    }

    /// The baseline over a custom base node (thermal/variation studies).
    pub fn over(node: TechnologyNode) -> Self {
        SramBptm65 { node }
    }
}

impl Default for SramBptm65 {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceTechnology for SramBptm65 {
    fn name(&self) -> &str {
        "sram"
    }

    fn node(&self) -> &TechnologyNode {
        &self.node
    }
}

/// Embedded DRAM: ~3× denser and ~3× slower than SRAM, with far lower
/// cell leakage but a standing refresh cost.
///
/// Reference ratios (vs a 0.05 pJ / 80 mW-per-MB high-density SRAM):
/// 0.15 pJ read/write (3×), ~5 mW/MB total static split into a residual
/// leakage floor and the refresh term, 3× latency, 1/3 area.
#[derive(Debug, Clone, PartialEq)]
pub struct Edram {
    node: TechnologyNode,
}

/// eDRAM total static power per bit at the reference point: 5 mW/MB.
const EDRAM_STATIC_PER_BIT: f64 = 5.0e-3 / (8.0 * 1024.0 * 1024.0);

/// The share of eDRAM static power that tracks the CMOS leakage knobs
/// (access transistors); the rest is knob-independent refresh.
const EDRAM_LEAKAGE_SHARE: f64 = 0.4;

impl Edram {
    /// eDRAM over the standard BPTM-65 periphery.
    pub fn new() -> Self {
        Edram {
            node: TechnologyNode::bptm65(),
        }
    }
}

impl Default for Edram {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceTechnology for Edram {
    fn name(&self) -> &str {
        "edram"
    }

    fn node(&self) -> &TechnologyNode {
        &self.node
    }

    fn read_energy_scale(&self) -> f64 {
        3.0
    }

    fn write_energy_scale(&self) -> f64 {
        3.0
    }

    fn leakage_scale(&self) -> f64 {
        // 1T1C cells leak through one access transistor instead of a
        // 6T cross-coupled pair: the knob-tracking share of 5 mW/MB
        // against the 80 mW/MB SRAM reference.
        EDRAM_LEAKAGE_SHARE * 5.0 / 80.0
    }

    fn refresh_power_per_bit(&self) -> Watts {
        Watts((1.0 - EDRAM_LEAKAGE_SHARE) * EDRAM_STATIC_PER_BIT)
    }

    fn delay_scale(&self) -> f64 {
        3.0
    }

    fn area_scale(&self) -> f64 {
        1.0 / 3.0
    }
}

/// STT-MRAM: non-volatile, near-zero cell leakage, no refresh, with a
/// pronounced read/write energy asymmetry and the slowest access of the
/// three.
///
/// Reference ratios (vs the same SRAM reference): 0.20 pJ read (4×),
/// 0.50 pJ write (10×), 0.1 mW/MB static (near-zero, 1/800 of SRAM),
/// 5× latency, 1/2 area.
#[derive(Debug, Clone, PartialEq)]
pub struct SttMram {
    node: TechnologyNode,
}

impl SttMram {
    /// STT-MRAM over the standard BPTM-65 periphery.
    pub fn new() -> Self {
        SttMram {
            node: TechnologyNode::bptm65(),
        }
    }
}

impl Default for SttMram {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceTechnology for SttMram {
    fn name(&self) -> &str {
        "stt-mram"
    }

    fn node(&self) -> &TechnologyNode {
        &self.node
    }

    fn read_energy_scale(&self) -> f64 {
        4.0
    }

    fn write_energy_scale(&self) -> f64 {
        10.0
    }

    fn leakage_scale(&self) -> f64 {
        0.1 / 80.0
    }

    fn delay_scale(&self) -> f64 {
        5.0
    }

    fn area_scale(&self) -> f64 {
        0.5
    }
}

/// The concrete technology handle carried by cache circuits and hierarchy
/// specs: a [`DeviceTechnology`]'s name and transforms as plain,
/// comparable data.
///
/// The default profile is the SRAM identity; consumers short-circuit on
/// [`is_identity`](Self::is_identity), so carrying a profile adds nothing
/// to the all-SRAM paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechProfile {
    /// Technology name (`"sram"`, `"edram"`, `"stt-mram"`, …).
    pub name: String,
    /// Array read-energy multiplier vs the SRAM baseline.
    pub read_energy_scale: f64,
    /// Array write-energy multiplier vs the SRAM baseline.
    pub write_energy_scale: f64,
    /// Array leakage multiplier vs the SRAM baseline.
    pub leakage_scale: f64,
    /// Refresh power per stored bit (knob-independent static power).
    pub refresh_power_per_bit: Watts,
    /// Array delay multiplier vs the SRAM baseline.
    pub delay_scale: f64,
    /// Array area multiplier vs the SRAM baseline.
    pub area_scale: f64,
}

impl TechProfile {
    /// The SRAM identity profile.
    pub fn sram() -> Self {
        SramBptm65::new().profile()
    }

    /// The eDRAM profile (see [`Edram`]).
    pub fn edram() -> Self {
        Edram::new().profile()
    }

    /// The STT-MRAM profile (see [`SttMram`]).
    pub fn stt_mram() -> Self {
        SttMram::new().profile()
    }

    /// Resolves a profile by its machine name, as the CLI's per-level
    /// `--l<i>-tech` flags spell it.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "sram" => Some(Self::sram()),
            "edram" => Some(Self::edram()),
            "stt-mram" | "sttmram" | "mram" => Some(Self::stt_mram()),
            _ => None,
        }
    }

    /// The names [`by_name`](Self::by_name) accepts, for usage text and
    /// error messages.
    pub const KNOWN_NAMES: [&'static str; 3] = ["sram", "edram", "stt-mram"];

    /// `true` when every transform is exactly the identity — the SRAM
    /// baseline. Identity profiles must change **nothing**: consumers
    /// skip the transform entirely, keeping all-SRAM studies bit-for-bit
    /// identical to the pre-technology-axis engine.
    pub fn is_identity(&self) -> bool {
        self.read_energy_scale == 1.0
            && self.write_energy_scale == 1.0
            && self.leakage_scale == 1.0
            && self.refresh_power_per_bit.0 == 0.0
            && self.delay_scale == 1.0
            && self.area_scale == 1.0
    }
}

impl Default for TechProfile {
    fn default() -> Self {
        Self::sram()
    }
}

impl fmt::Display for TechProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_is_the_identity() {
        let p = TechProfile::sram();
        assert!(p.is_identity());
        assert_eq!(p.name, "sram");
        assert_eq!(p, TechProfile::default());
    }

    #[test]
    fn non_sram_profiles_are_not_identity() {
        assert!(!TechProfile::edram().is_identity());
        assert!(!TechProfile::stt_mram().is_identity());
    }

    #[test]
    fn by_name_resolves_known_and_rejects_unknown() {
        for name in TechProfile::KNOWN_NAMES {
            let p = TechProfile::by_name(name).expect(name);
            assert_eq!(p.name, name);
        }
        assert_eq!(TechProfile::by_name("mram"), Some(TechProfile::stt_mram()));
        assert_eq!(TechProfile::by_name("flash"), None);
    }

    #[test]
    fn write_read_asymmetry_is_mram_shaped() {
        let m = TechProfile::stt_mram();
        assert!(m.write_energy_scale > 2.0 * m.read_energy_scale);
        let e = TechProfile::edram();
        assert_eq!(e.read_energy_scale, e.write_energy_scale);
    }

    #[test]
    fn mram_leakage_is_near_zero_and_refresh_free() {
        let m = TechProfile::stt_mram();
        assert!(m.leakage_scale < 0.01);
        assert_eq!(m.refresh_power_per_bit.0, 0.0);
    }

    #[test]
    fn edram_refresh_is_a_positive_static_term() {
        let e = TechProfile::edram();
        assert!(e.refresh_power_per_bit.0 > 0.0);
        // 1 MB of eDRAM: leakage share + refresh reconstructs the ~5 mW/MB
        // reference static power against the 80 mW/MB SRAM baseline.
        let bits = 8.0 * 1024.0 * 1024.0;
        let sram_leak_per_mb = 80.0e-3;
        let total = e.leakage_scale * sram_leak_per_mb + e.refresh_power_per_bit.0 * bits;
        assert!((total - 5.0e-3).abs() < 1.0e-4, "static/MB = {total}");
    }

    #[test]
    fn trait_profiles_round_trip_their_scales() {
        let d = Edram::new();
        let p = d.profile();
        assert_eq!(p.delay_scale, d.delay_scale());
        assert_eq!(p.read_energy_scale, d.read_energy_scale());
        assert_eq!(p.refresh_power_per_bit, d.refresh_power_per_bit());
        assert_eq!(d.node(), &TechnologyNode::bptm65());
    }

    #[test]
    fn density_ordering_matches_the_survey() {
        // eDRAM densest, then MRAM, then SRAM; SRAM fastest.
        let (s, e, m) = (
            TechProfile::sram(),
            TechProfile::edram(),
            TechProfile::stt_mram(),
        );
        assert!(e.area_scale < m.area_scale && m.area_scale < s.area_scale);
        assert!(s.delay_scale < e.delay_scale && e.delay_scale < m.delay_scale);
    }

    #[test]
    fn profiles_serialize_round_trip() {
        let p = TechProfile::edram();
        let json = serde_json::to_string(&p).expect("serializes");
        let back: TechProfile = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, p);
    }
}
