//! A sized, knob-assigned MOSFET — the unit every circuit model is built
//! from.

use crate::drive;
use crate::knobs::KnobPoint;
use crate::leakage::{self, ConductionState, LeakageBreakdown};
use crate::tech::TechnologyNode;
use crate::units::{Amperes, Farads, Meters, Microns, Ohms};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetKind {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl fmt::Display for MosfetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosfetKind::Nmos => write!(f, "nmos"),
            MosfetKind::Pmos => write!(f, "pmos"),
        }
    }
}

/// A transistor with fixed geometry and process-knob assignment.
///
/// ```
/// use nm_device::{Mosfet, MosfetKind, KnobPoint, TechnologyNode};
/// use nm_device::units::Microns;
///
/// let tech = TechnologyNode::bptm65();
/// let knobs = KnobPoint::nominal();
/// let m = Mosfet::nmos(Microns(1.0), tech.drawn_length(knobs.tox()), knobs);
/// assert_eq!(m.kind(), MosfetKind::Nmos);
/// assert!(m.on_current(&tech).micro() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    kind: MosfetKind,
    width: Microns,
    length: Meters,
    knobs: KnobPoint,
}

impl Mosfet {
    /// Creates a transistor; width and length must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `length` is not strictly positive — transistor
    /// geometry is fixed at design time, so a bad dimension is a programming
    /// error, not a runtime condition.
    pub fn new(kind: MosfetKind, width: Microns, length: Meters, knobs: KnobPoint) -> Self {
        assert!(
            width.0 > 0.0 && width.0.is_finite(),
            "transistor width must be positive, got {width}"
        );
        assert!(
            length.0 > 0.0 && length.0.is_finite(),
            "transistor length must be positive, got {length}"
        );
        Mosfet {
            kind,
            width,
            length,
            knobs,
        }
    }

    /// Convenience constructor for an N-channel device.
    pub fn nmos(width: Microns, length: Meters, knobs: KnobPoint) -> Self {
        Self::new(MosfetKind::Nmos, width, length, knobs)
    }

    /// Convenience constructor for a P-channel device.
    pub fn pmos(width: Microns, length: Meters, knobs: KnobPoint) -> Self {
        Self::new(MosfetKind::Pmos, width, length, knobs)
    }

    /// Polarity.
    pub fn kind(self) -> MosfetKind {
        self.kind
    }

    /// Drawn width.
    pub fn width(self) -> Microns {
        self.width
    }

    /// Drawn channel length.
    pub fn length(self) -> Meters {
        self.length
    }

    /// Process-knob assignment.
    pub fn knobs(self) -> KnobPoint {
        self.knobs
    }

    /// Returns a copy with a different knob assignment (same geometry).
    #[must_use]
    pub fn with_knobs(self, knobs: KnobPoint) -> Self {
        Mosfet { knobs, ..self }
    }

    /// Saturation drive current when on.
    pub fn on_current(self, tech: &TechnologyNode) -> Amperes {
        drive::on_current(tech, self.knobs, self.width, self.length, self.kind)
    }

    /// Effective switching resistance for RC delay estimates.
    pub fn effective_resistance(self, tech: &TechnologyNode) -> Ohms {
        drive::effective_resistance(tech, self.knobs, self.width, self.length, self.kind)
    }

    /// Total gate capacitance presented to a driver.
    pub fn gate_capacitance(self, tech: &TechnologyNode) -> Farads {
        drive::gate_capacitance(tech, self.knobs, self.width, self.length)
    }

    /// Drain junction capacitance.
    pub fn drain_capacitance(self, tech: &TechnologyNode) -> Farads {
        drive::drain_capacitance(tech, self.width)
    }

    /// Leakage breakdown for a device in the *off* state (the default
    /// accounting state for standby leakage).
    pub fn leakage(self, tech: &TechnologyNode) -> LeakageBreakdown {
        self.leakage_in_state(tech, ConductionState::Off)
    }

    /// Leakage breakdown for a device in an explicit conduction state.
    ///
    /// On devices contribute no subthreshold term (their channel conducts
    /// by design) but full gate tunnelling; off devices contribute
    /// subthreshold plus attenuated gate tunnelling. Junction leakage is
    /// state-independent.
    pub fn leakage_in_state(
        self,
        tech: &TechnologyNode,
        state: ConductionState,
    ) -> LeakageBreakdown {
        let sub = match state {
            ConductionState::Off => {
                leakage::subthreshold_current(tech, self.knobs, self.width, self.length)
            }
            ConductionState::On => Amperes(0.0),
        };
        let gate = leakage::gate_current(tech, self.knobs, self.width, self.length, state);
        let junction = leakage::junction_current(tech, self.width);
        LeakageBreakdown::from_currents(tech.vdd(), sub, gate, junction)
    }
}

impl fmt::Display for Mosfet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} W={:.3} µm L={:.1} nm {}",
            self.kind,
            self.width.0,
            self.length.nanos(),
            self.knobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Angstroms, Volts};

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = Mosfet::nmos(Microns(0.0), Meters(65e-9), KnobPoint::nominal());
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn negative_length_panics() {
        let _ = Mosfet::nmos(Microns(1.0), Meters(-1e-9), KnobPoint::nominal());
    }

    #[test]
    fn with_knobs_preserves_geometry() {
        let t = tech();
        let a = Mosfet::nmos(
            Microns(0.5),
            t.drawn_length(Angstroms(12.0)),
            KnobPoint::nominal(),
        );
        let b = a.with_knobs(KnobPoint::lowest_leakage());
        assert_eq!(a.width(), b.width());
        assert_eq!(a.length(), b.length());
        assert_ne!(a.knobs(), b.knobs());
    }

    #[test]
    fn on_state_has_no_subthreshold_but_more_gate() {
        let t = tech();
        let m = Mosfet::nmos(
            Microns(1.0),
            t.drawn_length(Angstroms(10.0)),
            KnobPoint::fastest(),
        );
        let off = m.leakage_in_state(&t, ConductionState::Off);
        let on = m.leakage_in_state(&t, ConductionState::On);
        assert_eq!(on.subthreshold.0, 0.0);
        assert!(off.subthreshold.0 > 0.0);
        assert!(on.gate.0 > off.gate.0);
        assert_eq!(on.junction, off.junction);
    }

    #[test]
    fn default_leakage_is_off_state() {
        let t = tech();
        let m = Mosfet::pmos(
            Microns(0.3),
            t.drawn_length(Angstroms(12.0)),
            KnobPoint::nominal(),
        );
        assert_eq!(m.leakage(&t), m.leakage_in_state(&t, ConductionState::Off));
    }

    #[test]
    fn corner_ordering_holds() {
        // The fastest corner must leak more and resist less than the
        // lowest-leakage corner.
        let t = tech();
        let fast = Mosfet::nmos(
            Microns(1.0),
            t.drawn_length(KnobPoint::fastest().tox()),
            KnobPoint::fastest(),
        );
        let slow = Mosfet::nmos(
            Microns(1.0),
            t.drawn_length(KnobPoint::lowest_leakage().tox()),
            KnobPoint::lowest_leakage(),
        );
        assert!(fast.leakage(&t).total().0 > slow.leakage(&t).total().0);
        assert!(fast.effective_resistance(&t).0 < slow.effective_resistance(&t).0);
    }

    #[test]
    fn display_mentions_kind_and_knobs() {
        let t = tech();
        let m = Mosfet::nmos(
            Microns(1.0),
            t.drawn_length(Angstroms(12.0)),
            KnobPoint::nominal(),
        );
        let s = m.to_string();
        assert!(s.contains("nmos") && s.contains("Vth"), "{s}");
    }

    #[test]
    fn leakage_scales_with_width() {
        let t = tech();
        let k = KnobPoint::new(Volts(0.3), Angstroms(12.0)).unwrap();
        let l = t.drawn_length(k.tox());
        let small = Mosfet::nmos(Microns(0.5), l, k).leakage(&t).total().0;
        let big = Mosfet::nmos(Microns(1.0), l, k).leakage(&t).total().0;
        assert!((big / small - 2.0).abs() < 1e-9);
    }
}
