//! Geometric consequences of the `Tox` knob.
//!
//! The paper (Section 2): increasing `Tox` at constant drawn length would
//! surrender gate control of the channel (DIBL), so the drawn channel
//! length must scale up with `Tox`; and to keep the memory cell stable the
//! cell transistor *widths* must scale with the new lengths too. The cell
//! therefore grows in both dimensions and its area quadratically.
//!
//! [`TechnologyNode::drawn_length`] implements the length rule; this module
//! packages the area consequences used by the geometry crate.

use crate::tech::TechnologyNode;
use crate::units::{Angstroms, SquareMicrons};

/// Area of a structure after `Tox`-driven scaling.
///
/// `base` is the structure's area at minimum `Tox`; the result grows with
/// the square of the linear cell-scale factor.
///
/// ```
/// use nm_device::{TechnologyNode, units::{Angstroms, SquareMicrons}};
/// use nm_device::scaling::scaled_area;
///
/// let tech = TechnologyNode::bptm65();
/// let a10 = scaled_area(&tech, SquareMicrons(1.0), Angstroms(10.0));
/// let a14 = scaled_area(&tech, SquareMicrons(1.0), Angstroms(14.0));
/// assert!((a10.0 - 1.0).abs() < 1e-12);
/// assert!(a14.0 > 1.2 && a14.0 < 2.0); // grows, but sub-2x over the legal range
/// ```
pub fn scaled_area(tech: &TechnologyNode, base: SquareMicrons, tox: Angstroms) -> SquareMicrons {
    let s = tech.cell_scale(tox);
    SquareMicrons(base.0 * s * s)
}

/// Linear dimension of a structure after `Tox`-driven scaling (for wire
/// lengths spanning scaled cells).
pub fn scaled_length_factor(tech: &TechnologyNode, tox: Angstroms) -> f64 {
    tech.cell_scale(tox)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_grows_quadratically() {
        let tech = TechnologyNode::bptm65();
        let s = tech.cell_scale(Angstroms(14.0));
        let a = scaled_area(&tech, SquareMicrons(2.0), Angstroms(14.0));
        assert!((a.0 - 2.0 * s * s).abs() < 1e-12);
    }

    #[test]
    fn length_factor_matches_cell_scale() {
        let tech = TechnologyNode::bptm65();
        for tox in [10.0, 11.0, 12.5, 14.0] {
            let tox = Angstroms(tox);
            assert_eq!(scaled_length_factor(&tech, tox), tech.cell_scale(tox));
        }
    }

    #[test]
    fn scaling_is_monotone_in_tox() {
        let tech = TechnologyNode::bptm65();
        let mut prev = 0.0;
        for tox in [10.0, 11.0, 12.0, 13.0, 14.0] {
            let a = scaled_area(&tech, SquareMicrons(1.0), Angstroms(tox)).0;
            assert!(a > prev);
            prev = a;
        }
    }
}
