//! Strongly-typed physical quantities.
//!
//! Every quantity that crosses a public API boundary in the workspace is a
//! newtype over `f64` (C-NEWTYPE): a [`Volts`] can never be confused with an
//! [`Angstroms`], and delay/power/energy carry their unit in the type.
//!
//! The wrapped value is public (these are passive, C-struct-spirit data) and
//! is always in the *named* unit — `Seconds(1e-12)` is one picosecond, and
//! the convenience constructors ([`Seconds::from_picos`],
//! [`Watts::from_milli`], …) plus accessors ([`Seconds::picos`],
//! [`Watts::milli`], …) convert for display and I/O.
//!
//! Arithmetic is implemented where it is physically meaningful: same-unit
//! addition/subtraction, scaling by `f64`, and the dimensionless ratio of
//! two same-unit quantities via `Div`.
//!
//! ```
//! use nm_device::units::{Seconds, Watts};
//!
//! let t = Seconds::from_picos(250.0) + Seconds::from_picos(750.0);
//! assert!((t.picos() - 1000.0).abs() < 1e-9);
//! let p = Watts::from_milli(3.0) * 2.0;
//! assert!((p.milli() - 6.0).abs() < 1e-12);
//! let ratio = Seconds(2e-9) / Seconds(1e-9);
//! assert_eq!(ratio, 2.0);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Defines a transparent `f64` newtype with the standard arithmetic and
/// formatting surface shared by every unit in this module.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in the base unit.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` when the value is finite (not NaN or ±∞).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);

unit!(
    /// Length in ångströms (1 Å = 0.1 nm); the natural unit for gate-oxide
    /// thickness at the 65 nm node.
    Angstroms,
    "Å"
);

unit!(
    /// Length in metres (SI base; used for channel dimensions internally).
    Meters,
    "m"
);

unit!(
    /// Length in microns (µm); the natural unit for transistor widths.
    Microns,
    "µm"
);

unit!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);

unit!(
    /// Time in seconds.
    Seconds,
    "s"
);

unit!(
    /// Power in watts.
    Watts,
    "W"
);

unit!(
    /// Energy in joules.
    Joules,
    "J"
);

unit!(
    /// Current in amperes.
    Amperes,
    "A"
);

unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);

unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);

unit!(
    /// Area in square microns (µm²); the natural unit for cell/array area.
    SquareMicrons,
    "µm²"
);

impl Angstroms {
    /// Converts to metres (1 Å = 1e-10 m).
    pub fn meters(self) -> Meters {
        Meters(self.0 * 1e-10)
    }
}

impl Meters {
    /// Converts to microns.
    pub fn microns(self) -> Microns {
        Microns(self.0 * 1e6)
    }

    /// Converts to nanometres as a bare `f64` (display convenience).
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }
}

impl Microns {
    /// Converts to metres.
    pub fn meters(self) -> Meters {
        Meters(self.0 * 1e-6)
    }
}

impl Seconds {
    /// Creates a time from picoseconds.
    pub fn from_picos(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Creates a time from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Returns the time in picoseconds.
    pub fn picos(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the time in nanoseconds.
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    pub fn from_milli(mw: f64) -> Self {
        Watts(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    pub fn from_micro(uw: f64) -> Self {
        Watts(uw * 1e-6)
    }

    /// Returns the power in milliwatts.
    pub fn milli(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the power in microwatts.
    pub fn micro(self) -> f64 {
        self.0 * 1e6
    }
}

impl Joules {
    /// Creates an energy from picojoules.
    pub fn from_picos(pj: f64) -> Self {
        Joules(pj * 1e-12)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nanos(nj: f64) -> Self {
        Joules(nj * 1e-9)
    }

    /// Returns the energy in picojoules.
    pub fn picos(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the energy in nanojoules.
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }
}

impl Amperes {
    /// Returns the current in microamperes.
    pub fn micro(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the current in nanoamperes.
    pub fn nano(self) -> f64 {
        self.0 * 1e9
    }
}

impl Farads {
    /// Creates a capacitance from femtofarads.
    pub fn from_femtos(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Returns the capacitance in femtofarads.
    pub fn femtos(self) -> f64 {
        self.0 * 1e15
    }
}

impl Kelvin {
    /// Creates a temperature from degrees Celsius.
    ///
    /// ```
    /// use nm_device::units::Kelvin;
    /// assert!((Kelvin::from_celsius(80.0).0 - 353.15).abs() < 1e-9);
    /// ```
    pub fn from_celsius(c: f64) -> Self {
        Kelvin(c + 273.15)
    }

    /// Thermal voltage `kT/q` at this temperature.
    pub fn thermal_voltage(self) -> Volts {
        /// Boltzmann constant over elementary charge, in V/K.
        const K_OVER_Q: f64 = 8.617_333_262e-5;
        Volts(K_OVER_Q * self.0)
    }
}

/// Product of a power and a time is an energy.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Product of a time and a power is an energy.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Product of a current and a voltage is a power.
impl Mul<Volts> for Amperes {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Product of a voltage and a current is a power.
impl Mul<Amperes> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amperes) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Product of a resistance and a capacitance is a time constant.
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// Product of a capacitance and a resistance is a time constant.
impl Mul<Ohms> for Farads {
    type Output = Seconds;
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// A voltage divided by a current is a resistance.
impl Div<Amperes> for Volts {
    type Output = Ohms;
    fn div(self, rhs: Amperes) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// An energy divided by a time is a power.
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// Energy stored on a capacitance charged to a voltage: `C·V²`.
///
/// This is the full charge/discharge cycle energy; a single switching event
/// dissipates half of it.
pub fn switching_energy(c: Farads, v: Volts) -> Joules {
    Joules(c.0 * v.0 * v.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_same_unit() {
        let a = Volts(0.3) + Volts(0.2);
        assert!((a.0 - 0.5).abs() < 1e-12);
        let b = a - Volts(0.1);
        assert!((b.0 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn scale_by_f64_both_sides() {
        assert!((Watts(2.0) * 3.0).0 - 6.0 < 1e-12);
        assert!((3.0 * Watts(2.0)).0 - 6.0 < 1e-12);
        assert!((Watts(6.0) / 3.0).0 - 2.0 < 1e-12);
    }

    #[test]
    fn ratio_is_dimensionless() {
        let r: f64 = Seconds(4.0) / Seconds(2.0);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::from_milli(10.0) * Seconds::from_nanos(1.0);
        assert!((e.picos() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn current_times_voltage_is_power() {
        let p = Amperes(1e-3) * Volts(1.0);
        assert!((p.milli() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rc_is_time() {
        let tau = Ohms(1e3) * Farads(1e-15);
        assert!((tau.picos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        assert!((Seconds::from_picos(123.0).picos() - 123.0).abs() < 1e-9);
        assert!((Watts::from_milli(4.5).milli() - 4.5).abs() < 1e-12);
        assert!((Joules::from_picos(7.0).picos() - 7.0).abs() < 1e-9);
        assert!((Angstroms(12.0).meters().0 - 1.2e-9).abs() < 1e-22);
        assert!((Microns(0.5).meters().0 - 5e-7).abs() < 1e-18);
        assert!((Meters(65e-9).nanos() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_voltage_at_80c() {
        let vt = Kelvin::from_celsius(80.0).thermal_voltage();
        assert!((vt.0 - 0.03043).abs() < 1e-4, "vt = {vt}");
    }

    #[test]
    fn display_has_suffix_and_precision() {
        assert_eq!(format!("{:.2}", Volts(0.305)), "0.30 V");
        assert_eq!(format!("{}", Angstroms(10.0)), "10 Å");
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Volts(-1.0).abs(), Volts(1.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = vec![Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert!((total.0 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn switching_energy_cv2() {
        let e = switching_energy(Farads::from_femtos(10.0), Volts(1.0));
        assert!((e.picos() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn ohms_law_division() {
        let r = Volts(1.0) / Amperes(1e-3);
        assert!((r.0 - 1000.0).abs() < 1e-9);
    }
}
