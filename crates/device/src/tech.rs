//! The technology node: every process constant the models need.
//!
//! [`TechnologyNode::bptm65`] is calibrated to play the role of the Berkeley
//! Predictive Technology Model 65 nm files the paper characterised with
//! HSPICE. The constants are chosen so the derived behaviour lands in the
//! bands the paper reports (see `DESIGN.md`, "Physics notes"):
//!
//! * subthreshold swing ≈ 90 mV/decade at 80 °C (one decade of leakage per
//!   ≈ 90 mV of `Vth`),
//! * gate tunnelling falls about one decade per ≈ 2 Å of `Tox`, and is the
//!   dominant leakage mechanism at the 10 Å end of the legal range,
//! * drive current ≈ 700 µA/µm for a nominal NMOS device,
//! * delay grows roughly linearly in `Tox` and (weakly) exponentially in
//!   `Vth`, with the `Vth` knob spanning the wider delay range — the
//!   asymmetry behind the paper's "Vth is the better knob" conclusion.

use crate::units::{Angstroms, Kelvin, Meters, Volts};
use serde::{Deserialize, Serialize};

/// Permittivity of SiO₂ in F/m (3.9 · ε₀).
pub const EPS_OX: f64 = 3.9 * 8.854e-12;

/// A complete set of process parameters for one technology node.
///
/// All fields are private; accessor methods expose the derived quantities
/// the rest of the workspace consumes. Use [`TechnologyNode::bptm65`] for
/// the node studied in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    /// Human-readable node name, e.g. `"bptm-65nm"`.
    name: String,
    /// Supply voltage.
    vdd: Volts,
    /// Operating temperature.
    temperature: Kelvin,
    /// Minimum drawn channel length (at minimum `Tox`).
    lgate_min: Meters,
    /// Minimum legal oxide thickness; the reference point for scaling.
    tox_min: Angstroms,
    /// Depletion capacitance per area (F/m²), sets the subthreshold slope
    /// factor `n = 1 + Cdep/Cox`.
    cdep: f64,
    /// DIBL coefficient at minimum channel length (V of Vth roll-off per V
    /// of Vds).
    dibl0: f64,
    /// Effective channel mobility (m²/V·s) entering the subthreshold
    /// pre-factor.
    mu_eff: f64,
    /// Gate tunnelling current density at (`tox_min`, `vdd` = 1 V), A/m².
    gate_j0: f64,
    /// Gate tunnelling exponential slope, 1/Å.
    gate_bg: f64,
    /// Fraction of full gate current leaked by an *off* transistor
    /// (edge-direct-tunnelling through the overlap region).
    gate_off_factor: f64,
    /// Junction (BTBT + diode) leakage per metre of transistor width, A/m.
    junction_per_width: f64,
    /// Alpha-power-law velocity-saturation exponent.
    alpha: f64,
    /// Drive-current calibration constant (A·m²/F after the `(W/L)·Cox`
    /// factors; absorbs mobility and saturation velocity).
    k_drive: f64,
    /// PMOS drive relative to NMOS.
    pmos_drive_ratio: f64,
    /// Near-threshold delay degradation weight (dimensionless); see
    /// [`crate::drive::effective_resistance`].
    near_vth_slowdown: f64,
    /// Fraction of the minimum drawn length added per unit of relative
    /// `Tox` increase (the paper's "drawn channel length must be scaled
    /// appropriately" rule).
    length_scaling: f64,
    /// Gate fringe capacitance per metre of width, F/m.
    cfringe_per_width: f64,
    /// Drain junction capacitance per metre of width, F/m.
    cjunction_per_width: f64,
    /// Wire resistance per metre, Ω/m (intermediate metal).
    wire_res_per_length: f64,
    /// Wire capacitance per metre, F/m (intermediate metal).
    wire_cap_per_length: f64,
}

impl TechnologyNode {
    /// The BPTM-like 65 nm node of the paper: 1.0 V supply, 80 °C.
    pub fn bptm65() -> Self {
        TechnologyNode {
            name: "bptm-65nm".to_owned(),
            vdd: Volts(1.0),
            temperature: Kelvin::from_celsius(80.0),
            lgate_min: Meters(65e-9),
            tox_min: Angstroms(10.0),
            cdep: 8.0e-3,
            dibl0: 0.08,
            mu_eff: 0.02,
            gate_j0: 1.0e7,
            gate_bg: 1.2,
            gate_off_factor: 0.1,
            junction_per_width: 5.0e-5,
            alpha: 1.5,
            k_drive: 3.1e-3,
            pmos_drive_ratio: 0.45,
            near_vth_slowdown: 0.45,
            length_scaling: 0.5,
            cfringe_per_width: 3.0e-10,
            cjunction_per_width: 1.0e-9,
            wire_res_per_length: 1.5e6,
            wire_cap_per_length: 2.0e-10,
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Operating temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Thermal voltage `kT/q` at the operating temperature.
    pub fn thermal_voltage(&self) -> Volts {
        self.temperature.thermal_voltage()
    }

    /// Minimum drawn channel length (at `Tox` = `tox_min`).
    pub fn lgate_min(&self) -> Meters {
        self.lgate_min
    }

    /// Minimum legal oxide thickness.
    pub fn tox_min(&self) -> Angstroms {
        self.tox_min
    }

    /// Gate-oxide capacitance per area for a given thickness, F/m².
    ///
    /// ```
    /// use nm_device::{TechnologyNode, units::Angstroms};
    /// let tech = TechnologyNode::bptm65();
    /// let cox = tech.cox(Angstroms(12.0));
    /// assert!((cox - 2.878e-2).abs() / cox < 0.01); // ≈ 28.8 fF/µm²
    /// ```
    pub fn cox(&self, tox: Angstroms) -> f64 {
        EPS_OX / tox.meters().0
    }

    /// Subthreshold slope factor `n = 1 + Cdep/Cox(Tox)`.
    ///
    /// Thicker oxide weakens gate control, so `n` (and with it the
    /// subthreshold swing) grows slightly with `Tox`.
    pub fn subthreshold_n(&self, tox: Angstroms) -> f64 {
        1.0 + self.cdep / self.cox(tox)
    }

    /// Subthreshold swing in mV/decade at the operating temperature.
    pub fn subthreshold_swing_mv(&self, tox: Angstroms) -> f64 {
        self.subthreshold_n(tox) * self.thermal_voltage().0 * std::f64::consts::LN_10 * 1e3
    }

    /// The drawn channel length mandated by a given oxide thickness.
    ///
    /// The paper: "The increase of Tox while maintaining the same drawn
    /// channel length may cause the gate terminal to lose control of the
    /// conduction state of the channel due to DIBL effect. Hence, when Tox
    /// changes, the drawn channel length must be scaled appropriately."
    ///
    /// We scale the drawn length by `1 + κ·(Tox/Tox_min − 1)` with
    /// κ = `length_scaling`.
    pub fn drawn_length(&self, tox: Angstroms) -> Meters {
        let rel = tox / self.tox_min; // dimensionless ratio ≥ 1
        Meters(self.lgate_min.0 * (1.0 + self.length_scaling * (rel - 1.0)))
    }

    /// Relative width/length scale factor for memory cells at a given
    /// `Tox` (1.0 at minimum `Tox`); cell area grows with its square.
    pub fn cell_scale(&self, tox: Angstroms) -> f64 {
        self.drawn_length(tox) / self.lgate_min
    }

    /// DIBL coefficient for a given drawn channel length; decays
    /// quadratically as the channel lengthens.
    pub fn dibl(&self, length: Meters) -> f64 {
        let ratio = self.lgate_min / length;
        self.dibl0 * ratio * ratio
    }

    /// Effective mobility entering the subthreshold pre-factor.
    pub fn mu_eff(&self) -> f64 {
        self.mu_eff
    }

    /// Gate tunnelling density parameters `(J0 [A/m²], Bg [1/Å])`.
    pub fn gate_tunnelling(&self) -> (f64, f64) {
        (self.gate_j0, self.gate_bg)
    }

    /// Fraction of full gate current leaked by an off transistor.
    pub fn gate_off_factor(&self) -> f64 {
        self.gate_off_factor
    }

    /// Junction leakage per metre of width, A/m.
    pub fn junction_per_width(&self) -> f64 {
        self.junction_per_width
    }

    /// Alpha-power-law exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Drive calibration constant.
    pub fn k_drive(&self) -> f64 {
        self.k_drive
    }

    /// PMOS drive strength relative to NMOS.
    pub fn pmos_drive_ratio(&self) -> f64 {
        self.pmos_drive_ratio
    }

    /// Near-threshold delay degradation weight.
    pub fn near_vth_slowdown(&self) -> f64 {
        self.near_vth_slowdown
    }

    /// Gate fringe capacitance per metre of width, F/m.
    pub fn cfringe_per_width(&self) -> f64 {
        self.cfringe_per_width
    }

    /// Drain junction capacitance per metre of width, F/m.
    pub fn cjunction_per_width(&self) -> f64 {
        self.cjunction_per_width
    }

    /// Wire resistance per metre, Ω/m.
    pub fn wire_res_per_length(&self) -> f64 {
        self.wire_res_per_length
    }

    /// Wire capacitance per metre, F/m.
    pub fn wire_cap_per_length(&self) -> f64 {
        self.wire_cap_per_length
    }

    /// Returns a copy of this node at a different operating temperature
    /// (for temperature-sensitivity studies).
    #[must_use]
    pub fn at_temperature(&self, temperature: Kelvin) -> Self {
        TechnologyNode {
            temperature,
            ..self.clone()
        }
    }

    /// Returns a copy with a different drawn-length scaling coefficient
    /// κ (the fraction of relative `Tox` increase added to the drawn
    /// length). κ = 0 disables the paper's scaling rule; the default node
    /// uses 0.5. For ablation studies.
    ///
    /// # Panics
    ///
    /// Panics for negative or non-finite κ.
    #[must_use]
    pub fn with_length_scaling(&self, kappa: f64) -> Self {
        assert!(
            kappa.is_finite() && kappa >= 0.0,
            "length-scaling κ must be non-negative, got {kappa}"
        );
        TechnologyNode {
            length_scaling: kappa,
            ..self.clone()
        }
    }

    /// Returns a copy with a different gate-tunnelling slope `Bg` (1/Å;
    /// the default node uses 1.2, about one decade per 1.9 Å). For
    /// ablation studies of how strongly `Tox` controls gate leakage.
    ///
    /// # Panics
    ///
    /// Panics for non-positive or non-finite slopes.
    #[must_use]
    pub fn with_gate_slope(&self, bg: f64) -> Self {
        assert!(
            bg.is_finite() && bg > 0.0,
            "gate slope must be positive, got {bg}"
        );
        TechnologyNode {
            gate_bg: bg,
            ..self.clone()
        }
    }

    /// Returns a copy with a different near-threshold delay-degradation
    /// weight λ (the default node uses 0.45). For ablation studies of the
    /// `Vth`-delay sensitivity that drives the paper's "Vth is the better
    /// knob" conclusion.
    ///
    /// # Panics
    ///
    /// Panics for λ outside `[0, 1)` (λ → 1 diverges at `Vth = Vdd`).
    #[must_use]
    pub fn with_near_vth_slowdown(&self, lambda: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&lambda),
            "near-Vth slowdown must be in [0, 1), got {lambda}"
        );
        TechnologyNode {
            near_vth_slowdown: lambda,
            ..self.clone()
        }
    }
}

impl Default for TechnologyNode {
    fn default() -> Self {
        Self::bptm65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cox_is_inverse_in_tox() {
        let t = TechnologyNode::bptm65();
        let thin = t.cox(Angstroms(10.0));
        let thick = t.cox(Angstroms(14.0));
        assert!((thin / thick - 1.4).abs() < 1e-9);
    }

    #[test]
    fn swing_near_90mv_per_decade() {
        let t = TechnologyNode::bptm65();
        let s = t.subthreshold_swing_mv(Angstroms(12.0));
        assert!((85.0..95.0).contains(&s), "swing = {s} mV/dec");
    }

    #[test]
    fn n_grows_with_tox() {
        let t = TechnologyNode::bptm65();
        assert!(t.subthreshold_n(Angstroms(14.0)) > t.subthreshold_n(Angstroms(10.0)));
    }

    #[test]
    fn drawn_length_scales_with_tox() {
        let t = TechnologyNode::bptm65();
        assert!((t.drawn_length(Angstroms(10.0)).nanos() - 65.0).abs() < 1e-9);
        let l14 = t.drawn_length(Angstroms(14.0)).nanos();
        assert!((l14 - 78.0).abs() < 1e-9, "L(14Å) = {l14} nm");
    }

    #[test]
    fn dibl_weakens_with_length() {
        let t = TechnologyNode::bptm65();
        let short = t.dibl(Meters(65e-9));
        let long = t.dibl(Meters(78e-9));
        assert!(short > long);
        assert!((short - 0.08).abs() < 1e-12);
    }

    #[test]
    fn cell_scale_is_one_at_min_tox() {
        let t = TechnologyNode::bptm65();
        assert!((t.cell_scale(Angstroms(10.0)) - 1.0).abs() < 1e-12);
        assert!(t.cell_scale(Angstroms(14.0)) > 1.0);
    }

    #[test]
    fn at_temperature_changes_thermal_voltage_only() {
        let t = TechnologyNode::bptm65();
        let cold = t.at_temperature(Kelvin::from_celsius(25.0));
        assert!(cold.thermal_voltage() < t.thermal_voltage());
        assert_eq!(cold.vdd(), t.vdd());
        assert_eq!(cold.lgate_min(), t.lgate_min());
    }

    #[test]
    fn default_is_bptm65() {
        assert_eq!(TechnologyNode::default().name(), "bptm-65nm");
    }

    #[test]
    fn ablation_setters_change_one_parameter() {
        let t = TechnologyNode::bptm65();
        let no_scaling = t.with_length_scaling(0.0);
        assert!((no_scaling.drawn_length(Angstroms(14.0)).nanos() - 65.0).abs() < 1e-9);
        assert_eq!(no_scaling.vdd(), t.vdd());

        let steep = t.with_gate_slope(2.4);
        assert!((steep.gate_tunnelling().1 - 2.4).abs() < 1e-12);
        assert_eq!(steep.gate_tunnelling().0, t.gate_tunnelling().0);

        let flat = t.with_near_vth_slowdown(0.0);
        assert_eq!(flat.near_vth_slowdown(), 0.0);
        assert_eq!(flat.alpha(), t.alpha());
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_kappa_rejected() {
        let _ = TechnologyNode::bptm65().with_length_scaling(-0.1);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn divergent_lambda_rejected() {
        let _ = TechnologyNode::bptm65().with_near_vth_slowdown(1.0);
    }
}
