//! # nm-device — analytic 65 nm MOSFET models with `Vth`/`Tox` knobs
//!
//! This crate is the device-physics substrate of the `nmcache` workspace, a
//! reproduction of *"Power-Performance Trade-Offs in Nanometer-Scale
//! Multi-Level Caches Considering Total Leakage"* (Bai et al., DATE 2005).
//!
//! The paper characterises BPTM 65 nm technology files with HSPICE over a
//! grid of threshold voltages (`Vth` from 0.2 V to 0.5 V) and gate-oxide
//! thicknesses (`Tox` from 10 Å to 14 Å), then reduces the data to two
//! closed forms that drive every optimisation in the paper:
//!
//! * total leakage `P(Vth, Tox) = A0 + A1·e^(a1·Vth) + A2·e^(a2·Tox)`
//! * delay `T(Vth, Tox) = k0 + k1·e^(k3·Vth) + k2·Tox`
//!
//! We replace the HSPICE characterisation with an analytic transistor model
//! (subthreshold conduction with DIBL, direct-tunnelling gate leakage, a
//! junction floor, and alpha-power-law drive current) calibrated to the
//! 65 nm node, and provide the same surface-fitting step in [`fit`].
//!
//! ## Layout
//!
//! * [`units`] — strongly-typed physical quantities ([`Volts`],
//!   [`Angstroms`], [`Watts`], [`Seconds`], …).
//! * [`tech`] — the [`TechnologyNode`] parameter set (BPTM-65-like).
//! * [`knobs`] — the (`Vth`, `Tox`) design knobs: [`KnobPoint`] and the
//!   discrete [`KnobGrid`] the optimisers search over.
//! * [`scaling`] — the paper's rule that drawn channel length (and memory
//!   cell width) must scale with `Tox` to preserve electrostatic integrity.
//! * [`leakage`] — per-transistor subthreshold / gate / junction leakage.
//! * [`drive`] — alpha-power on-current, effective resistance, capacitances.
//! * [`transistor`] — a sized [`Mosfet`] combining the above.
//! * [`technology`] — the per-level [`DeviceTechnology`] axis (SRAM
//!   baseline, eDRAM, STT-MRAM) and the [`TechProfile`] handle hierarchy
//!   specs carry.
//! * [`fit`] — least-squares fitting of the paper's Eq. 1/Eq. 2 forms plus
//!   a small dense linear-algebra kernel.
//!
//! ## Quick example
//!
//! ```
//! use nm_device::{Mosfet, KnobPoint, TechnologyNode};
//! use nm_device::units::{Volts, Angstroms, Microns};
//!
//! let tech = TechnologyNode::bptm65();
//! let knobs = KnobPoint::new(Volts(0.30), Angstroms(12.0))?;
//! let nfet = Mosfet::nmos(Microns(0.5), tech.drawn_length(knobs.tox()), knobs);
//!
//! let leak = nfet.leakage(&tech);
//! assert!(leak.total().0 > 0.0);
//! // Raising Vth must reduce subthreshold leakage.
//! let hi = Mosfet::nmos(Microns(0.5), tech.drawn_length(knobs.tox()),
//!                       KnobPoint::new(Volts(0.45), Angstroms(12.0))?);
//! assert!(hi.leakage(&tech).subthreshold.0 < leak.subthreshold.0);
//! # Ok::<(), nm_device::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod fit;
pub mod knobs;
pub mod leakage;
pub mod names;
pub mod prims;
pub mod scaling;
pub mod snm;
pub mod tech;
pub mod technology;
pub mod transistor;
pub mod units;
pub mod variation;

mod error;

pub use error::DeviceError;
pub use knobs::{KnobGrid, KnobPoint};
pub use leakage::LeakageBreakdown;
pub use prims::{HoistedPrims, PointPrims, PrimsTable, ScalarPrims};
pub use tech::TechnologyNode;
pub use technology::{DeviceTechnology, Edram, SramBptm65, SttMram, TechProfile};
pub use transistor::{Mosfet, MosfetKind};
pub use units::{
    Amperes, Angstroms, Farads, Joules, Kelvin, Meters, Microns, Ohms, Seconds, SquareMicrons,
    Volts, Watts,
};
