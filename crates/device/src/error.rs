use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating device models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A threshold voltage was outside the technology's legal range.
    VthOutOfRange {
        /// The offending value in volts.
        value: f64,
        /// Legal minimum in volts.
        min: f64,
        /// Legal maximum in volts.
        max: f64,
    },
    /// A gate-oxide thickness was outside the technology's legal range.
    ToxOutOfRange {
        /// The offending value in ångströms.
        value: f64,
        /// Legal minimum in ångströms.
        min: f64,
        /// Legal maximum in ångströms.
        max: f64,
    },
    /// A transistor dimension was not strictly positive.
    NonPositiveDimension {
        /// Name of the dimension ("width" or "length").
        which: &'static str,
        /// The offending value in metres.
        value: f64,
    },
    /// A grid was requested with fewer than two points on an axis.
    DegenerateGrid {
        /// Name of the degenerate axis.
        axis: &'static str,
    },
    /// A surface fit was requested with insufficient samples.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A linear system was singular or ill-conditioned.
    SingularSystem,
    /// A fitted surface produced a non-finite value — the knob point is
    /// outside the region the fit is valid in, or the fit itself is
    /// corrupt.
    NonFiniteSurface {
        /// Which surface ("leakage" or "delay").
        surface: &'static str,
        /// Threshold voltage evaluated at (volts).
        vth: f64,
        /// Oxide thickness evaluated at (ångströms).
        tox: f64,
        /// The non-finite value produced.
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::VthOutOfRange { value, min, max } => {
                write!(f, "threshold voltage {value} V outside [{min}, {max}] V")
            }
            DeviceError::ToxOutOfRange { value, min, max } => {
                write!(f, "oxide thickness {value} Å outside [{min}, {max}] Å")
            }
            DeviceError::NonPositiveDimension { which, value } => {
                write!(f, "transistor {which} must be positive, got {value} m")
            }
            DeviceError::DegenerateGrid { axis } => {
                write!(f, "knob grid needs at least two points on the {axis} axis")
            }
            DeviceError::TooFewSamples { got, need } => {
                write!(f, "surface fit needs at least {need} samples, got {got}")
            }
            DeviceError::SingularSystem => write!(f, "linear system is singular"),
            DeviceError::NonFiniteSurface {
                surface,
                vth,
                tox,
                value,
            } => write!(
                f,
                "fitted {surface} surface is non-finite ({value}) at \
                 Vth={vth} V, Tox={tox} Å — outside the characterized region"
            ),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DeviceError::VthOutOfRange {
            value: 0.6,
            min: 0.2,
            max: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("0.6"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
