//! Per-point primitive providers for grid-bulk evaluation.
//!
//! The circuit models in `nm-geometry` compose a handful of device
//! primitives — subthreshold and gate-tunnelling currents, drive
//! current, switching resistance, gate capacitance — dozens of times per
//! component analysis. Every one of those primitives factors into a part
//! that depends only on the knob pair (the `exp`/`powf` terms of the
//! paper's Eq.1/Eq.2 fitted forms) and a cheap multiplier chain over the
//! device geometry. When a whole knob grid is evaluated at once, the
//! expensive factors can be hoisted out and computed once per point.
//!
//! [`PointPrims`] abstracts that factoring:
//!
//! * [`ScalarPrims`] delegates every call to the reference functions in
//!   [`crate::leakage`] / [`crate::drive`] — the seed arithmetic,
//!   unchanged;
//! * [`HoistedPrims`] carries the precomputed per-point factors and
//!   finishes each call with the **same left-to-right multiply chain**
//!   the reference functions use, so its results are bit-identical;
//! * [`PrimsTable`] builds a `HoistedPrims` per grid point, deduplicating
//!   the per-axis work (`Tox`-only and `Vth`-only terms are computed once
//!   per distinct axis value, not once per point).
//!
//! Bit-identity is load-bearing: the evaluation engine's golden tables
//! pin results to the last decimal, so the hoisted path must reproduce
//! the exact floating-point operation order of the scalar path. Each
//! `HoistedPrims` method documents the chain it replicates.

use crate::drive;
use crate::knobs::KnobPoint;
use crate::leakage::{self, ConductionState};
use crate::tech::TechnologyNode;
use crate::transistor::MosfetKind;
use crate::units::{Amperes, Farads, Meters, Microns, Ohms};

/// Device primitives evaluated at one knob point.
///
/// All lengths are the drawn length mandated by the point's `Tox` (the
/// only length the cache geometry models use).
pub trait PointPrims {
    /// The knob point these primitives are evaluated at.
    fn point(&self) -> KnobPoint;

    /// Drawn channel length mandated by this point's `Tox`.
    fn drawn_length(&self, tech: &TechnologyNode) -> Meters;

    /// Linear cell-scale factor of this point's `Tox`.
    fn cell_scale(&self, tech: &TechnologyNode) -> f64;

    /// Subthreshold current of an off device of the given width (drawn
    /// length), as [`leakage::subthreshold_current`].
    fn subthreshold_current(&self, tech: &TechnologyNode, width: Microns) -> Amperes;

    /// Gate-tunnelling current of a device of the given width, as
    /// [`leakage::gate_current`].
    fn gate_current(
        &self,
        tech: &TechnologyNode,
        width: Microns,
        state: ConductionState,
    ) -> Amperes;

    /// Saturation drive current, as [`drive::on_current`].
    fn on_current(&self, tech: &TechnologyNode, width: Microns, kind: MosfetKind) -> Amperes;

    /// Effective switching resistance, as [`drive::effective_resistance`].
    fn effective_resistance(&self, tech: &TechnologyNode, width: Microns, kind: MosfetKind)
        -> Ohms;

    /// Total gate capacitance, as [`drive::gate_capacitance`].
    fn gate_capacitance(&self, tech: &TechnologyNode, width: Microns) -> Farads;
}

/// The reference provider: every call goes straight to the scalar device
/// functions with `length = tech.drawn_length(tox)`. Zero precomputation,
/// bit-identical to calling [`crate::leakage`] / [`crate::drive`] by hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarPrims(KnobPoint);

impl ScalarPrims {
    /// Wraps a knob point.
    pub fn new(knobs: KnobPoint) -> Self {
        ScalarPrims(knobs)
    }
}

impl PointPrims for ScalarPrims {
    fn point(&self) -> KnobPoint {
        self.0
    }

    fn drawn_length(&self, tech: &TechnologyNode) -> Meters {
        tech.drawn_length(self.0.tox())
    }

    fn cell_scale(&self, tech: &TechnologyNode) -> f64 {
        tech.cell_scale(self.0.tox())
    }

    fn subthreshold_current(&self, tech: &TechnologyNode, width: Microns) -> Amperes {
        leakage::subthreshold_current(tech, self.0, width, self.drawn_length(tech))
    }

    fn gate_current(
        &self,
        tech: &TechnologyNode,
        width: Microns,
        state: ConductionState,
    ) -> Amperes {
        leakage::gate_current(tech, self.0, width, self.drawn_length(tech), state)
    }

    fn on_current(&self, tech: &TechnologyNode, width: Microns, kind: MosfetKind) -> Amperes {
        drive::on_current(tech, self.0, width, self.drawn_length(tech), kind)
    }

    fn effective_resistance(
        &self,
        tech: &TechnologyNode,
        width: Microns,
        kind: MosfetKind,
    ) -> Ohms {
        drive::effective_resistance(tech, self.0, width, self.drawn_length(tech), kind)
    }

    fn gate_capacitance(&self, tech: &TechnologyNode, width: Microns) -> Farads {
        drive::gate_capacitance(tech, self.0, width, self.drawn_length(tech))
    }
}

/// Precomputed per-point factors of every device primitive.
///
/// Construction pays one `exp` (the joint subthreshold exponent), one
/// `powf` (the alpha-power overdrive) and one more `exp` (the
/// gate-tunnelling density) per point; every [`PointPrims`] call is then
/// a short multiply chain, width- and component-independent work having
/// been hoisted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoistedPrims {
    knobs: KnobPoint,
    length: Meters,
    scale: f64,
    cox: f64,
    vt: f64,
    /// `μ·Cox` — leading pair of the subthreshold chain.
    sub_k: f64,
    /// `e^((η·Vdd − Vth)/(n·vT))`.
    sub_exp: f64,
    /// `1 − e^(−Vdd/vT)`.
    drain_term: f64,
    /// `J0·Vox²·(Tox₀/Tox)²·e^(−Bg·(Tox − Tox₀))`.
    gate_density: f64,
    gate_off: f64,
    k_drive: f64,
    pmos_ratio: f64,
    /// `(Vdd − Vth)^α`.
    drive_pow: f64,
    /// `1/(1 − λ·Vth/Vdd)`.
    near_vth: f64,
    /// `0.7·Vdd` — numerator of the average-current resistance.
    r_num: f64,
    cfringe: f64,
}

/// `Tox`-only derived quantities, computed once per distinct axis value.
#[derive(Debug, Clone, Copy)]
struct ToxDerived {
    cox: f64,
    length: Meters,
    scale: f64,
    n: f64,
    eta: f64,
    gate_density: f64,
}

impl ToxDerived {
    fn new(tech: &TechnologyNode, tox: crate::units::Angstroms) -> Self {
        let length = tech.drawn_length(tox);
        let (j0, bg) = tech.gate_tunnelling();
        let tox0 = tech.tox_min().0;
        let vox = tech.vdd().0;
        // Replicates the density expression of `leakage::gate_current`.
        let gate_density =
            j0 * (vox * vox) * (tox0 / tox.0) * (tox0 / tox.0) * (-(bg) * (tox.0 - tox0)).exp();
        ToxDerived {
            cox: tech.cox(tox),
            length,
            scale: tech.cell_scale(tox),
            n: tech.subthreshold_n(tox),
            eta: tech.dibl(length),
            gate_density,
        }
    }
}

/// `Vth`-only derived quantities, computed once per distinct axis value.
#[derive(Debug, Clone, Copy)]
struct VthDerived {
    drive_pow: f64,
    near_vth: f64,
}

impl VthDerived {
    fn new(tech: &TechnologyNode, vth: crate::units::Volts) -> Self {
        let overdrive = tech.vdd().0 - vth.0;
        debug_assert!(overdrive > 0.0, "legal knobs keep Vdd − Vth positive");
        VthDerived {
            drive_pow: overdrive.powf(tech.alpha()),
            near_vth: 1.0 / (1.0 - tech.near_vth_slowdown() * vth.0 / tech.vdd().0),
        }
    }
}

impl HoistedPrims {
    /// Precomputes the factors for one knob point.
    pub fn new(tech: &TechnologyNode, knobs: KnobPoint) -> Self {
        Self::from_axes(
            tech,
            knobs,
            &ToxDerived::new(tech, knobs.tox()),
            &VthDerived::new(tech, knobs.vth()),
        )
    }

    fn from_axes(tech: &TechnologyNode, knobs: KnobPoint, t: &ToxDerived, v: &VthDerived) -> Self {
        let vt = tech.thermal_voltage().0;
        let vdd = tech.vdd().0;
        // Replicates the exponent of `leakage::subthreshold_current`.
        let exponent = (t.eta * vdd - knobs.vth().0) / (t.n * vt);
        HoistedPrims {
            knobs,
            length: t.length,
            scale: t.scale,
            cox: t.cox,
            vt,
            sub_k: tech.mu_eff() * t.cox,
            sub_exp: exponent.exp(),
            drain_term: 1.0 - (-vdd / vt).exp(),
            gate_density: t.gate_density,
            gate_off: tech.gate_off_factor(),
            k_drive: tech.k_drive(),
            pmos_ratio: tech.pmos_drive_ratio(),
            drive_pow: v.drive_pow,
            near_vth: v.near_vth,
            r_num: 0.7 * vdd,
            cfringe: tech.cfringe_per_width(),
        }
    }
}

impl PointPrims for HoistedPrims {
    fn point(&self) -> KnobPoint {
        self.knobs
    }

    fn drawn_length(&self, _tech: &TechnologyNode) -> Meters {
        self.length
    }

    fn cell_scale(&self, _tech: &TechnologyNode) -> f64 {
        self.scale
    }

    // `μ·Cox · (W/L) · vT · vT · e^(…) · (1 − e^(−Vdd/vT))` — the exact
    // left-to-right chain of `leakage::subthreshold_current` with the
    // first pair and both exponentials precomputed.
    fn subthreshold_current(&self, _tech: &TechnologyNode, width: Microns) -> Amperes {
        let w_over_l = width.meters().0 / self.length.0;
        Amperes(self.sub_k * w_over_l * self.vt * self.vt * self.sub_exp * self.drain_term)
    }

    // `density · W·L · state_factor`, as `leakage::gate_current`.
    fn gate_current(
        &self,
        _tech: &TechnologyNode,
        width: Microns,
        state: ConductionState,
    ) -> Amperes {
        let area = width.meters().0 * self.length.0;
        let state_factor = match state {
            ConductionState::On => 1.0,
            ConductionState::Off => self.gate_off,
        };
        Amperes(self.gate_density * area * state_factor)
    }

    // `k · kind_factor · (W/L) · Cox · (Vdd − Vth)^α`, as
    // `drive::on_current`.
    fn on_current(&self, _tech: &TechnologyNode, width: Microns, kind: MosfetKind) -> Amperes {
        let w_over_l = width.meters().0 / self.length.0;
        let kind_factor = match kind {
            MosfetKind::Nmos => 1.0,
            MosfetKind::Pmos => self.pmos_ratio,
        };
        Amperes(self.k_drive * kind_factor * w_over_l * self.cox * self.drive_pow)
    }

    // `(0.7·Vdd)/Ion · 1/(1 − λ·Vth/Vdd)`, as
    // `drive::effective_resistance`.
    fn effective_resistance(
        &self,
        tech: &TechnologyNode,
        width: Microns,
        kind: MosfetKind,
    ) -> Ohms {
        let ion = self.on_current(tech, width, kind);
        let base = self.r_num / ion.0;
        Ohms(base * self.near_vth)
    }

    // `Cox·W·L + cfringe·W`, as `drive::gate_capacitance`.
    fn gate_capacitance(&self, _tech: &TechnologyNode, width: Microns) -> Farads {
        let w = width.meters().0;
        let plate = self.cox * w * self.length.0;
        let fringe = self.cfringe * w;
        Farads(plate + fringe)
    }
}

/// A [`HoistedPrims`] per knob point, built with per-axis deduplication:
/// the `Tox`-only and `Vth`-only derived quantities are computed once per
/// distinct axis value (matched by bit pattern), so building a table over
/// an `nV × nT` grid costs `nV + nT` axis evaluations plus one joint
/// subthreshold `exp` per point.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimsTable {
    items: Vec<HoistedPrims>,
}

impl PrimsTable {
    /// Builds the table for a point set under one technology node.
    pub fn new(tech: &TechnologyNode, points: &[KnobPoint]) -> Self {
        let mut tox_cache: Vec<(u64, ToxDerived)> = Vec::new();
        let mut vth_cache: Vec<(u64, VthDerived)> = Vec::new();
        let items = points
            .iter()
            .map(|&p| {
                let tox_bits = p.tox().0.to_bits();
                let t = match tox_cache.iter().find(|(b, _)| *b == tox_bits) {
                    Some((_, t)) => *t,
                    None => {
                        let t = ToxDerived::new(tech, p.tox());
                        tox_cache.push((tox_bits, t));
                        t
                    }
                };
                let vth_bits = p.vth().0.to_bits();
                let v = match vth_cache.iter().find(|(b, _)| *b == vth_bits) {
                    Some((_, v)) => *v,
                    None => {
                        let v = VthDerived::new(tech, p.vth());
                        vth_cache.push((vth_bits, v));
                        v
                    }
                };
                HoistedPrims::from_axes(tech, p, &t, &v)
            })
            .collect();
        PrimsTable { items }
    }

    /// The per-point entries, aligned with the input point order.
    pub fn items(&self) -> &[HoistedPrims] {
        &self.items
    }

    /// Number of points in the table.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the table holds no points.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::KnobGrid;
    use crate::units::{Angstroms, Volts};

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    /// Every primitive of the hoisted provider must agree bit-for-bit
    /// with the scalar reference over the full paper grid.
    #[test]
    fn hoisted_matches_scalar_bit_for_bit() {
        let t = tech();
        let points: Vec<KnobPoint> = KnobGrid::paper().points().collect();
        let table = PrimsTable::new(&t, &points);
        assert_eq!(table.len(), points.len());
        for (p, h) in points.iter().zip(table.items()) {
            let s = ScalarPrims::new(*p);
            assert_eq!(h.point(), s.point());
            assert_eq!(
                h.drawn_length(&t).0.to_bits(),
                s.drawn_length(&t).0.to_bits()
            );
            assert_eq!(h.cell_scale(&t).to_bits(), s.cell_scale(&t).to_bits());
            for width in [Microns(0.15), Microns(0.5), Microns(4.0)] {
                assert_eq!(
                    h.subthreshold_current(&t, width).0.to_bits(),
                    s.subthreshold_current(&t, width).0.to_bits(),
                    "sub at {p}"
                );
                for state in [ConductionState::On, ConductionState::Off] {
                    assert_eq!(
                        h.gate_current(&t, width, state).0.to_bits(),
                        s.gate_current(&t, width, state).0.to_bits(),
                        "gate at {p}"
                    );
                }
                for kind in [MosfetKind::Nmos, MosfetKind::Pmos] {
                    assert_eq!(
                        h.on_current(&t, width, kind).0.to_bits(),
                        s.on_current(&t, width, kind).0.to_bits(),
                        "ion at {p}"
                    );
                    assert_eq!(
                        h.effective_resistance(&t, width, kind).0.to_bits(),
                        s.effective_resistance(&t, width, kind).0.to_bits(),
                        "reff at {p}"
                    );
                }
                assert_eq!(
                    h.gate_capacitance(&t, width).0.to_bits(),
                    s.gate_capacitance(&t, width).0.to_bits(),
                    "cg at {p}"
                );
            }
        }
    }

    /// The hoisted factors must also be identical under modified nodes
    /// (the temperature and sensitivity studies re-derive the node).
    #[test]
    fn hoisted_tracks_modified_nodes() {
        let hot = tech().at_temperature(crate::units::Kelvin::from_celsius(110.0));
        let p = k(0.35, 11.5);
        let h = HoistedPrims::new(&hot, p);
        let s = ScalarPrims::new(p);
        assert_eq!(
            h.subthreshold_current(&hot, Microns(1.0)).0.to_bits(),
            s.subthreshold_current(&hot, Microns(1.0)).0.to_bits()
        );
        assert_eq!(
            h.effective_resistance(&hot, Microns(1.0), MosfetKind::Pmos)
                .0
                .to_bits(),
            s.effective_resistance(&hot, Microns(1.0), MosfetKind::Pmos)
                .0
                .to_bits()
        );
    }

    /// Axis dedup must not change results relative to direct
    /// per-point construction.
    #[test]
    fn table_dedup_equals_per_point_construction() {
        let t = tech();
        let points = [k(0.2, 10.0), k(0.2, 14.0), k(0.5, 10.0), k(0.2, 10.0)];
        let table = PrimsTable::new(&t, &points);
        assert!(!table.is_empty());
        for (p, h) in points.iter().zip(table.items()) {
            assert_eq!(*h, HoistedPrims::new(&t, *p));
        }
    }
}
