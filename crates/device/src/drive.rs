//! Drive-strength and capacitance models: the delay side of the trade-off.
//!
//! Saturation current follows the alpha-power law
//! `Ion = k·(W/L)·Cox·(Vdd − Vth)^α`; the switching resistance adds a
//! near-threshold degradation term so that delay grows super-linearly as
//! `Vth` approaches `Vdd` — this is what makes `Vth` the wide-range delay
//! knob and `Tox` (whose effect on `Cox`, and through the drawn-length rule
//! on `W/L`, is roughly linear over the legal 10–14 Å window) the narrow
//! one, exactly the asymmetry of the paper's Figure 1.

use crate::knobs::KnobPoint;
use crate::tech::TechnologyNode;
use crate::transistor::MosfetKind;
use crate::units::{Amperes, Farads, Meters, Microns, Ohms};

/// Saturation drive current of an on transistor.
///
/// # Panics
///
/// Does not panic for legal [`KnobPoint`]s: `Vdd − Vth` stays positive
/// because the knob range tops out at 0.5 V on a 1 V supply.
pub fn on_current(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    width: Microns,
    length: Meters,
    kind: MosfetKind,
) -> Amperes {
    let overdrive = tech.vdd().0 - knobs.vth().0;
    debug_assert!(overdrive > 0.0, "legal knobs keep Vdd − Vth positive");
    let cox = tech.cox(knobs.tox());
    let w_over_l = width.meters().0 / length.0;
    let kind_factor = match kind {
        MosfetKind::Nmos => 1.0,
        MosfetKind::Pmos => tech.pmos_drive_ratio(),
    };
    Amperes(tech.k_drive() * kind_factor * w_over_l * cox * overdrive.powf(tech.alpha()))
}

/// Effective switching resistance used in Elmore/RC delay estimates.
///
/// `Reff = 0.7·Vdd/Ion · 1/(1 − λ·Vth/Vdd)` — the first factor is the
/// classic average-current approximation, the second captures the slowed
/// input slope and reduced gain near threshold (λ =
/// [`TechnologyNode::near_vth_slowdown`]).
pub fn effective_resistance(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    width: Microns,
    length: Meters,
    kind: MosfetKind,
) -> Ohms {
    let ion = on_current(tech, knobs, width, length, kind);
    let base = 0.7 * tech.vdd().0 / ion.0;
    let near_vth = 1.0 / (1.0 - tech.near_vth_slowdown() * knobs.vth().0 / tech.vdd().0);
    Ohms(base * near_vth)
}

/// Total gate capacitance: oxide plate capacitance plus fringe.
pub fn gate_capacitance(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    width: Microns,
    length: Meters,
) -> Farads {
    let cox = tech.cox(knobs.tox());
    let plate = cox * width.meters().0 * length.0;
    let fringe = tech.cfringe_per_width() * width.meters().0;
    Farads(plate + fringe)
}

/// Drain junction capacitance (per device, proportional to width).
pub fn drain_capacitance(tech: &TechnologyNode, width: Microns) -> Farads {
    Farads(tech.cjunction_per_width() * width.meters().0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Angstroms, Volts};

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    fn knobs(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn nominal_drive_near_700ua_per_um() {
        let t = tech();
        let k = knobs(0.30, 12.0);
        let i = on_current(
            &t,
            k,
            Microns(1.0),
            t.drawn_length(k.tox()),
            MosfetKind::Nmos,
        );
        assert!(
            (400.0..1000.0).contains(&i.micro()),
            "Ion = {} µA/µm",
            i.micro()
        );
    }

    #[test]
    fn pmos_is_weaker() {
        let t = tech();
        let k = knobs(0.30, 12.0);
        let l = t.drawn_length(k.tox());
        let n = on_current(&t, k, Microns(1.0), l, MosfetKind::Nmos).0;
        let p = on_current(&t, k, Microns(1.0), l, MosfetKind::Pmos).0;
        assert!((p / n - t.pmos_drive_ratio()).abs() < 1e-12);
    }

    #[test]
    fn resistance_grows_with_vth() {
        let t = tech();
        let l = t.drawn_length(Angstroms(12.0));
        let r_lo = effective_resistance(&t, knobs(0.20, 12.0), Microns(1.0), l, MosfetKind::Nmos);
        let r_hi = effective_resistance(&t, knobs(0.50, 12.0), Microns(1.0), l, MosfetKind::Nmos);
        assert!(r_hi.0 > r_lo.0);
        // The Vth knob must span a wider relative delay range than the Tox
        // knob (the paper's Figure 1 asymmetry).
        let r_thin = effective_resistance(
            &t,
            knobs(0.30, 10.0),
            Microns(1.0),
            t.drawn_length(Angstroms(10.0)),
            MosfetKind::Nmos,
        );
        let r_thick = effective_resistance(
            &t,
            knobs(0.30, 14.0),
            Microns(1.0),
            t.drawn_length(Angstroms(14.0)),
            MosfetKind::Nmos,
        );
        let vth_span = r_hi.0 / r_lo.0;
        let tox_span = r_thick.0 / r_thin.0;
        assert!(
            vth_span > tox_span,
            "vth span {vth_span:.2} ≤ tox span {tox_span:.2}"
        );
    }

    #[test]
    fn resistance_roughly_linear_in_tox() {
        // Check the ratio R(12)/R(10) ≈ R(14)/R(12) within 15 % — i.e. the
        // Tox dependence is smooth and near power-law/linear over the range.
        let t = tech();
        let r = |tox: f64| {
            effective_resistance(
                &t,
                knobs(0.30, tox),
                Microns(1.0),
                t.drawn_length(Angstroms(tox)),
                MosfetKind::Nmos,
            )
            .0
        };
        let g1 = r(12.0) / r(10.0);
        let g2 = r(14.0) / r(12.0);
        assert!((g1 / g2 - 1.0).abs() < 0.15, "g1 = {g1}, g2 = {g2}");
    }

    #[test]
    fn gate_cap_scale() {
        let t = tech();
        let k = knobs(0.3, 12.0);
        let c = gate_capacitance(&t, k, Microns(1.0), t.drawn_length(k.tox()));
        assert!(
            (1.0..4.0).contains(&c.femtos()),
            "Cg = {} fF/µm",
            c.femtos()
        );
        // Thicker oxide → smaller plate capacitance at equal geometry.
        let thin = gate_capacitance(&t, knobs(0.3, 10.0), Microns(1.0), Meters(65e-9));
        let thick = gate_capacitance(&t, knobs(0.3, 14.0), Microns(1.0), Meters(65e-9));
        assert!(thin.0 > thick.0);
    }

    #[test]
    fn drain_cap_proportional_to_width() {
        let t = tech();
        let c1 = drain_capacitance(&t, Microns(1.0)).0;
        let c3 = drain_capacitance(&t, Microns(3.0)).0;
        assert!((c3 / c1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn an_inverter_rc_is_picoseconds() {
        let t = tech();
        let k = KnobPoint::nominal();
        let l = t.drawn_length(k.tox());
        let r = effective_resistance(&t, k, Microns(1.0), l, MosfetKind::Nmos);
        let c = gate_capacitance(&t, k, Microns(4.0), l); // FO4-ish load
        let tau = r * c;
        assert!(
            (1.0..100.0).contains(&tau.picos()),
            "τ = {} ps",
            tau.picos()
        );
    }
}
