//! Least-squares fitting of the paper's closed-form leakage and delay
//! surfaces.
//!
//! Section 3 of the paper reduces extensive HSPICE data to two fitted
//! forms, then optimises over those forms rather than over raw simulation:
//!
//! * Eq. 1 — leakage: `P(Vth, Tox) = A0 + A1·e^(a1·Vth) + A2·e^(a2·Tox)`
//! * Eq. 2 — delay: `T(Vth, Tox) = k0 + k1·e^(k3·Vth) + k2·Tox`
//!
//! [`LeakageFit::fit`] and [`DelayFit::fit`] perform the same reduction on
//! samples of our analytic model, using *variable projection*: the
//! nonlinear exponents are found by coordinate descent on a bracketing
//! grid, and for each candidate exponent pair the linear amplitudes are the
//! exact least-squares solution of a small normal system.
//!
//! ```
//! use nm_device::fit::{DelayFit, Sample};
//! use nm_device::{KnobGrid, KnobPoint};
//!
//! // A synthetic surface with the exact Eq. 2 shape is recovered ~perfectly.
//! let truth = |p: KnobPoint| 100.0 + 5.0 * (4.0 * p.vth().0).exp() + 20.0 * p.tox().0;
//! let samples: Vec<Sample> = KnobGrid::paper()
//!     .points()
//!     .map(|p| Sample { knobs: p, value: truth(p) })
//!     .collect();
//! let fit = DelayFit::fit(&samples)?;
//! assert!(fit.r_squared > 0.999);
//! # Ok::<(), nm_device::DeviceError>(())
//! ```

use crate::error::DeviceError;
use crate::knobs::KnobPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One characterisation sample: a knob assignment and the observed value
/// (leakage in watts or delay in seconds — the fit is unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Knob assignment the value was observed at.
    pub knobs: KnobPoint,
    /// Observed value.
    pub value: f64,
}

/// Solves the square linear system `M·x = b` in place by Gaussian
/// elimination with partial pivoting.
///
/// # Errors
///
/// Returns [`DeviceError::SingularSystem`] when a pivot vanishes.
pub fn solve_linear(mut m: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, DeviceError> {
    let n = b.len();
    assert!(
        m.len() == n && m.iter().all(|row| row.len() == n),
        "system must be square"
    );
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .unwrap_or(col);
        if m[pivot_row][col].abs() < 1e-300 {
            return Err(DeviceError::SingularSystem);
        }
        m.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            // Two rows of the same matrix: split the borrow at `row`.
            let (pivot_rows, tail) = m.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (k, cell) in tail[0].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot[k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Ordinary least squares `argmin_x ‖A·x − y‖²` via the normal equations
/// (the designs here have ≤ 3 well-conditioned columns).
///
/// # Errors
///
/// Returns [`DeviceError::SingularSystem`] for rank-deficient designs.
pub fn least_squares(a: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, DeviceError> {
    let rows = a.len();
    assert_eq!(rows, y.len(), "design and response must have equal rows");
    let cols = a[0].len();
    let mut ata = vec![vec![0.0; cols]; cols];
    let mut aty = vec![0.0; cols];
    for (row, &yi) in a.iter().zip(y) {
        assert_eq!(row.len(), cols, "ragged design matrix");
        for i in 0..cols {
            aty[i] += row[i] * yi;
            for j in 0..cols {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    solve_linear(ata, aty)
}

/// Coefficient of determination of predictions against observations.
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean. A constant response with zero residual reports 1.0.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len());
    let n = observed.len() as f64;
    let mean = observed.iter().sum::<f64>() / n;
    let ss_tot: f64 = observed.iter().map(|o| (o - mean) * (o - mean)).sum();
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(o, p)| (o - p) * (o - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fitted Eq. 1 leakage surface `A0 + A1·e^(a1·Vth) + A2·e^(a2·Tox)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageFit {
    /// Constant floor `A0`.
    pub a0: f64,
    /// Subthreshold amplitude `A1`.
    pub a1: f64,
    /// Subthreshold exponent `a1` (1/V; negative — leakage falls with Vth).
    pub exp_vth: f64,
    /// Gate amplitude `A2`.
    pub a2: f64,
    /// Gate exponent `a2` (1/Å; negative — leakage falls with Tox).
    pub exp_tox: f64,
    /// Fit quality over the training samples.
    pub r_squared: f64,
}

impl LeakageFit {
    /// Fits Eq. 1 to characterisation samples.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TooFewSamples`] with fewer than 6 samples and
    /// [`DeviceError::SingularSystem`] if the samples are degenerate (e.g.
    /// all at one knob point).
    pub fn fit(samples: &[Sample]) -> Result<Self, DeviceError> {
        let _span = nm_telemetry::span(crate::names::FIT_LEAKAGE);
        if samples.len() < 6 {
            return Err(DeviceError::TooFewSamples {
                got: samples.len(),
                need: 6,
            });
        }
        // Physical bracket: subthreshold slope is tens of 1/V (negative),
        // gate slope is ~ -1 to -3 per Å (negative).
        let (best, _) = project_two_exponents(
            samples,
            |s| s.knobs.vth().0,
            |s| s.knobs.tox().0,
            (-45.0, -5.0),
            (-4.0, -0.2),
        )?;
        Ok(best)
    }

    /// Evaluates the fitted surface at a knob point.
    ///
    /// The raw fitted form — use [`try_evaluate`](Self::try_evaluate) when
    /// the coefficients may have been perturbed (deserialized, hand-built,
    /// extrapolated) and garbage must become a typed error instead.
    pub fn evaluate(&self, knobs: KnobPoint) -> f64 {
        nm_telemetry::counter_inc(crate::names::EVALUATE);
        self.a0
            + self.a1 * (self.exp_vth * knobs.vth().0).exp()
            + self.a2 * (self.exp_tox * knobs.tox().0).exp()
    }

    /// [`evaluate`](Self::evaluate) with a range guard: the exponentials
    /// of Eq. 1 overflow to `inf`/NaN outside the characterized region
    /// (or under corrupt coefficients), and this surfaces that as a typed
    /// error instead of letting garbage propagate into a study.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NonFiniteSurface`] when the surface value
    /// is NaN or infinite at `knobs`.
    pub fn try_evaluate(&self, knobs: KnobPoint) -> Result<f64, DeviceError> {
        nm_telemetry::counter_inc(crate::names::TRY_EVALUATE);
        let value = self.evaluate(knobs);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(DeviceError::NonFiniteSurface {
                surface: "leakage",
                vth: knobs.vth().0,
                tox: knobs.tox().0,
                value,
            })
        }
    }
}

impl fmt::Display for LeakageFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P = {:.3e} + {:.3e}·e^({:.2}·Vth) + {:.3e}·e^({:.2}·Tox)  (R² = {:.4})",
            self.a0, self.a1, self.exp_vth, self.a2, self.exp_tox, self.r_squared
        )
    }
}

/// Fitted Eq. 2 delay surface `k0 + k1·e^(k3·Vth) + k2·Tox`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayFit {
    /// Constant term `k0`.
    pub k0: f64,
    /// Vth amplitude `k1`.
    pub k1: f64,
    /// Vth exponent `k3` (1/V; positive and "very small" per the paper).
    pub exp_vth: f64,
    /// Linear Tox slope `k2` (per Å).
    pub k2: f64,
    /// Fit quality over the training samples.
    pub r_squared: f64,
}

impl DelayFit {
    /// Fits Eq. 2 to characterisation samples.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TooFewSamples`] with fewer than 5 samples and
    /// [`DeviceError::SingularSystem`] for degenerate sample sets.
    pub fn fit(samples: &[Sample]) -> Result<Self, DeviceError> {
        let _span = nm_telemetry::span(crate::names::FIT_DELAY);
        if samples.len() < 5 {
            return Err(DeviceError::TooFewSamples {
                got: samples.len(),
                need: 5,
            });
        }
        let mut best: Option<DelayFit> = None;
        // Variable projection over the single nonlinear exponent k3.
        let mut lo = 0.1;
        let mut hi = 12.0;
        for _round in 0..8 {
            let mut round_best: Option<(f64, DelayFit)> = None;
            for i in 0..=16 {
                let k3 = lo + (hi - lo) * i as f64 / 16.0;
                let design: Vec<Vec<f64>> = samples
                    .iter()
                    .map(|s| vec![1.0, (k3 * s.knobs.vth().0).exp(), s.knobs.tox().0])
                    .collect();
                let y: Vec<f64> = samples.iter().map(|s| s.value).collect();
                let Ok(coef) = least_squares(&design, &y) else {
                    continue;
                };
                let predicted: Vec<f64> = design
                    .iter()
                    .map(|row| coef[0] * row[0] + coef[1] * row[1] + coef[2] * row[2])
                    .collect();
                let r2 = r_squared(&y, &predicted);
                let candidate = DelayFit {
                    k0: coef[0],
                    k1: coef[1],
                    exp_vth: k3,
                    k2: coef[2],
                    r_squared: r2,
                };
                if round_best.as_ref().is_none_or(|(best_r2, _)| r2 > *best_r2) {
                    round_best = Some((r2, candidate));
                }
            }
            let Some((_, candidate)) = round_best else {
                return Err(DeviceError::SingularSystem);
            };
            let width = (hi - lo) / 8.0;
            lo = (candidate.exp_vth - width).max(0.01);
            hi = candidate.exp_vth + width;
            best = Some(candidate);
        }
        best.ok_or(DeviceError::SingularSystem)
    }

    /// Evaluates the fitted surface at a knob point.
    ///
    /// The raw fitted form — use [`try_evaluate`](Self::try_evaluate) when
    /// the coefficients may have been perturbed (deserialized, hand-built,
    /// extrapolated) and garbage must become a typed error instead.
    pub fn evaluate(&self, knobs: KnobPoint) -> f64 {
        nm_telemetry::counter_inc(crate::names::EVALUATE);
        self.k0 + self.k1 * (self.exp_vth * knobs.vth().0).exp() + self.k2 * knobs.tox().0
    }

    /// [`evaluate`](Self::evaluate) with a range guard: returns a typed
    /// error instead of a non-finite delay.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::NonFiniteSurface`] when the surface value
    /// is NaN or infinite at `knobs`.
    pub fn try_evaluate(&self, knobs: KnobPoint) -> Result<f64, DeviceError> {
        nm_telemetry::counter_inc(crate::names::TRY_EVALUATE);
        let value = self.evaluate(knobs);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(DeviceError::NonFiniteSurface {
                surface: "delay",
                vth: knobs.vth().0,
                tox: knobs.tox().0,
                value,
            })
        }
    }
}

impl fmt::Display for DelayFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T = {:.3e} + {:.3e}·e^({:.2}·Vth) + {:.3e}·Tox  (R² = {:.4})",
            self.k0, self.k1, self.exp_vth, self.k2, self.r_squared
        )
    }
}

/// Coordinate-descent variable projection for the two-exponent Eq. 1 form.
fn project_two_exponents(
    samples: &[Sample],
    x1: impl Fn(&Sample) -> f64,
    x2: impl Fn(&Sample) -> f64,
    bracket1: (f64, f64),
    bracket2: (f64, f64),
) -> Result<(LeakageFit, f64), DeviceError> {
    let y: Vec<f64> = samples.iter().map(|s| s.value).collect();
    let evaluate = |e1: f64, e2: f64| -> Option<(LeakageFit, f64)> {
        let design: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| vec![1.0, (e1 * x1(s)).exp(), (e2 * x2(s)).exp()])
            .collect();
        let coef = least_squares(&design, &y).ok()?;
        let predicted: Vec<f64> = design
            .iter()
            .map(|row| coef[0] * row[0] + coef[1] * row[1] + coef[2] * row[2])
            .collect();
        let r2 = r_squared(&y, &predicted);
        Some((
            LeakageFit {
                a0: coef[0],
                a1: coef[1],
                exp_vth: e1,
                a2: coef[2],
                exp_tox: e2,
                r_squared: r2,
            },
            r2,
        ))
    };

    let (mut lo1, mut hi1) = bracket1;
    let (mut lo2, mut hi2) = bracket2;
    let mut best: Option<(LeakageFit, f64)> = None;
    for _round in 0..6 {
        let mut round_best: Option<(LeakageFit, f64)> = None;
        for i in 0..=10 {
            let e1 = lo1 + (hi1 - lo1) * i as f64 / 10.0;
            for j in 0..=10 {
                let e2 = lo2 + (hi2 - lo2) * j as f64 / 10.0;
                if let Some((fit, r2)) = evaluate(e1, e2) {
                    if round_best.as_ref().is_none_or(|(_, b)| r2 > *b) {
                        round_best = Some((fit, r2));
                    }
                }
            }
        }
        let Some((fit, r2)) = round_best else {
            return Err(DeviceError::SingularSystem);
        };
        let w1 = (hi1 - lo1) / 5.0;
        let w2 = (hi2 - lo2) / 5.0;
        lo1 = fit.exp_vth - w1;
        hi1 = fit.exp_vth + w1;
        lo2 = fit.exp_tox - w2;
        hi2 = fit.exp_tox + w2;
        best = Some((fit, r2));
    }
    best.ok_or(DeviceError::SingularSystem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::KnobGrid;
    use crate::units::{Angstroms, Volts};

    fn grid_samples(f: impl Fn(KnobPoint) -> f64) -> Vec<Sample> {
        KnobGrid::paper()
            .points()
            .map(|p| Sample {
                knobs: p,
                value: f(p),
            })
            .collect()
    }

    #[test]
    fn solve_linear_identity() {
        let x = solve_linear(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_requires_pivoting() {
        // First pivot is zero; partial pivoting must rescue it.
        let x = solve_linear(vec![vec![0.0, 1.0], vec![2.0, 0.0]], vec![5.0, 6.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_detects_singularity() {
        let r = solve_linear(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]);
        assert_eq!(r, Err(DeviceError::SingularSystem));
    }

    #[test]
    fn least_squares_recovers_plane() {
        // y = 2 + 3·x over x = 0..10
        let a: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let c = least_squares(&a, &y).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-9 && (c[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        assert_eq!(r_squared(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
        let r = r_squared(&[1.0, 2.0, 3.0], &[2.0, 2.0, 2.0]); // mean predictor
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn leakage_fit_recovers_exact_form() {
        let truth =
            |p: KnobPoint| 1e-4 + 3e-2 * (-22.0 * p.vth().0).exp() + 8e2 * (-1.3 * p.tox().0).exp();
        let fit = LeakageFit::fit(&grid_samples(truth)).unwrap();
        assert!(fit.r_squared > 0.999, "{fit}");
        assert!((fit.exp_vth + 22.0).abs() < 2.0, "{fit}");
        assert!((fit.exp_tox + 1.3).abs() < 0.3, "{fit}");
    }

    #[test]
    fn delay_fit_recovers_exact_form() {
        let truth = |p: KnobPoint| 50.0 + 2.0 * (5.5 * p.vth().0).exp() + 12.0 * p.tox().0;
        let fit = DelayFit::fit(&grid_samples(truth)).unwrap();
        assert!(fit.r_squared > 0.9999, "{fit}");
        assert!((fit.exp_vth - 5.5).abs() < 0.5, "{fit}");
        assert!((fit.k2 - 12.0).abs() < 1.0, "{fit}");
    }

    #[test]
    fn fit_rejects_too_few_samples() {
        let s = vec![
            Sample {
                knobs: KnobPoint::nominal(),
                value: 1.0,
            };
            3
        ];
        assert!(matches!(
            LeakageFit::fit(&s),
            Err(DeviceError::TooFewSamples { .. })
        ));
        assert!(matches!(
            DelayFit::fit(&s),
            Err(DeviceError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn evaluate_matches_formula() {
        let fit = LeakageFit {
            a0: 1.0,
            a1: 2.0,
            exp_vth: -10.0,
            a2: 3.0,
            exp_tox: -1.0,
            r_squared: 1.0,
        };
        let p = KnobPoint::new(Volts(0.3), Angstroms(10.0)).unwrap();
        let expected = 1.0 + 2.0 * (-3.0f64).exp() + 3.0 * (-10.0f64).exp();
        assert!((fit.evaluate(p) - expected).abs() < 1e-12);

        let dfit = DelayFit {
            k0: 1.0,
            k1: 2.0,
            exp_vth: 3.0,
            k2: 4.0,
            r_squared: 1.0,
        };
        let expected_d = 1.0 + 2.0 * (0.9f64).exp() + 40.0;
        assert!((dfit.evaluate(p) - expected_d).abs() < 1e-12);
    }

    #[test]
    fn try_evaluate_accepts_finite_and_rejects_overflowed_surfaces() {
        let p = KnobPoint::new(Volts(0.3), Angstroms(10.0)).unwrap();
        let healthy = LeakageFit {
            a0: 1.0,
            a1: 2.0,
            exp_vth: -10.0,
            a2: 3.0,
            exp_tox: -1.0,
            r_squared: 1.0,
        };
        assert_eq!(healthy.try_evaluate(p), Ok(healthy.evaluate(p)));

        // An exponent far outside the physical bracket overflows Eq. 1
        // to infinity — the guard turns that into a typed error.
        let overflowed = LeakageFit {
            exp_tox: 1e3,
            ..healthy
        };
        match overflowed.try_evaluate(p) {
            Err(DeviceError::NonFiniteSurface {
                surface, vth, tox, ..
            }) => {
                assert_eq!(surface, "leakage");
                assert_eq!((vth, tox), (0.3, 10.0));
            }
            other => panic!("expected NonFiniteSurface, got {other:?}"),
        }

        let poisoned_delay = DelayFit {
            k0: f64::NAN,
            k1: 2.0,
            exp_vth: 3.0,
            k2: 4.0,
            r_squared: 1.0,
        };
        assert!(matches!(
            poisoned_delay.try_evaluate(p),
            Err(DeviceError::NonFiniteSurface {
                surface: "delay",
                ..
            })
        ));
    }

    #[test]
    fn display_shows_r_squared() {
        let fit = DelayFit {
            k0: 0.0,
            k1: 1.0,
            exp_vth: 2.0,
            k2: 3.0,
            r_squared: 0.5,
        };
        assert!(fit.to_string().contains("R²"));
    }
}
