//! The process design knobs of the paper: threshold voltage and gate-oxide
//! thickness, and the discrete grids the optimisers enumerate.
//!
//! The paper lets `Vth` vary from 0.2 V to 0.5 V and `Tox` from 10 Å to
//! 14 Å ("chosen to reflect typical values of high-performance logic for
//! the studied technology node") and performs its constrained minimisation
//! over *discrete values with small step size*. [`KnobGrid`] reproduces
//! exactly that discretisation.

use crate::error::DeviceError;
use crate::units::{Angstroms, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Legal `Vth` range at the studied node (paper Section 2), volts.
pub const VTH_RANGE: (f64, f64) = (0.2, 0.5);

/// Legal `Tox` range at the studied node (paper Section 2), ångströms.
pub const TOX_RANGE: (f64, f64) = (10.0, 14.0);

/// One (`Vth`, `Tox`) assignment for a circuit component.
///
/// Construction validates both knobs against the paper's ranges, so a
/// `KnobPoint` is always legal (C-VALIDATE / static enforcement).
///
/// ```
/// use nm_device::KnobPoint;
/// use nm_device::units::{Volts, Angstroms};
///
/// let p = KnobPoint::new(Volts(0.35), Angstroms(11.0))?;
/// assert_eq!(p.vth(), Volts(0.35));
/// assert!(KnobPoint::new(Volts(0.55), Angstroms(11.0)).is_err());
/// # Ok::<(), nm_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct KnobPoint {
    vth: Volts,
    tox: Angstroms,
}

impl KnobPoint {
    /// Creates a knob point after range-checking both values.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::VthOutOfRange`] or
    /// [`DeviceError::ToxOutOfRange`] when a knob falls outside the legal
    /// window of the studied technology node (a small tolerance absorbs
    /// floating-point grid endpoints).
    pub fn new(vth: Volts, tox: Angstroms) -> Result<Self, DeviceError> {
        const EPS: f64 = 1e-9;
        if !vth.0.is_finite() || vth.0 < VTH_RANGE.0 - EPS || vth.0 > VTH_RANGE.1 + EPS {
            return Err(DeviceError::VthOutOfRange {
                value: vth.0,
                min: VTH_RANGE.0,
                max: VTH_RANGE.1,
            });
        }
        if !tox.0.is_finite() || tox.0 < TOX_RANGE.0 - EPS || tox.0 > TOX_RANGE.1 + EPS {
            return Err(DeviceError::ToxOutOfRange {
                value: tox.0,
                min: TOX_RANGE.0,
                max: TOX_RANGE.1,
            });
        }
        Ok(KnobPoint { vth, tox })
    }

    /// The most aggressive legal corner: minimum `Vth`, minimum `Tox`
    /// (fastest, leakiest).
    pub fn fastest() -> Self {
        KnobPoint {
            vth: Volts(VTH_RANGE.0),
            tox: Angstroms(TOX_RANGE.0),
        }
    }

    /// The most conservative legal corner: maximum `Vth`, maximum `Tox`
    /// (slowest, least leaky).
    pub fn lowest_leakage() -> Self {
        KnobPoint {
            vth: Volts(VTH_RANGE.1),
            tox: Angstroms(TOX_RANGE.1),
        }
    }

    /// The nominal process corner used for un-optimised components
    /// (mid-range `Vth`, nominal 12 Å oxide).
    pub fn nominal() -> Self {
        KnobPoint {
            vth: Volts(0.3),
            tox: Angstroms(12.0),
        }
    }

    /// Threshold voltage.
    pub fn vth(self) -> Volts {
        self.vth
    }

    /// Gate-oxide thickness.
    pub fn tox(self) -> Angstroms {
        self.tox
    }
}

impl fmt::Display for KnobPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(Vth={:.3} V, Tox={:.1} Å)", self.vth.0, self.tox.0)
    }
}

impl Default for KnobPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

/// A discrete grid of legal knob values, the search space of every
/// optimiser in the workspace.
///
/// The paper chooses "discrete values with small step size"; the
/// [`KnobGrid::paper`] constructor uses 10 mV `Vth` steps and 0.5 Å `Tox`
/// steps (31 × 9 = 279 points). Coarser grids are available for the
/// combinatorially expensive tuple experiments.
///
/// ```
/// use nm_device::KnobGrid;
///
/// let g = KnobGrid::paper();
/// assert_eq!(g.vth_values().len(), 31);
/// assert_eq!(g.tox_values().len(), 9);
/// assert_eq!(g.points().count(), 279);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobGrid {
    vth_values: Vec<Volts>,
    tox_values: Vec<Angstroms>,
}

impl KnobGrid {
    /// Builds a grid with `n_vth` evenly spaced `Vth` points and `n_tox`
    /// evenly spaced `Tox` points spanning the full legal ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::DegenerateGrid`] when either count is < 2.
    pub fn uniform(n_vth: usize, n_tox: usize) -> Result<Self, DeviceError> {
        if n_vth < 2 {
            return Err(DeviceError::DegenerateGrid { axis: "Vth" });
        }
        if n_tox < 2 {
            return Err(DeviceError::DegenerateGrid { axis: "Tox" });
        }
        let vth_values = (0..n_vth)
            .map(|i| {
                let t = i as f64 / (n_vth - 1) as f64;
                Volts(VTH_RANGE.0 + t * (VTH_RANGE.1 - VTH_RANGE.0))
            })
            .collect();
        let tox_values = (0..n_tox)
            .map(|i| {
                let t = i as f64 / (n_tox - 1) as f64;
                Angstroms(TOX_RANGE.0 + t * (TOX_RANGE.1 - TOX_RANGE.0))
            })
            .collect();
        Ok(KnobGrid {
            vth_values,
            tox_values,
        })
    }

    /// The paper's fine grid: 10 mV `Vth` steps, 0.5 Å `Tox` steps.
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: static grid sizes
    pub fn paper() -> Self {
        Self::uniform(31, 9).expect("static grid sizes are non-degenerate")
    }

    /// A coarse grid (7 × 5) for combinatorial experiments such as the
    /// (`nTox`, `nVth`) tuple-selection problem of Figure 2.
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: static grid sizes
    pub fn coarse() -> Self {
        Self::uniform(7, 5).expect("static grid sizes are non-degenerate")
    }

    /// The discrete `Vth` axis, ascending.
    pub fn vth_values(&self) -> &[Volts] {
        &self.vth_values
    }

    /// The discrete `Tox` axis, ascending.
    pub fn tox_values(&self) -> &[Angstroms] {
        &self.tox_values
    }

    /// Iterates over every (`Vth`, `Tox`) point of the grid, `Tox`-major.
    pub fn points(&self) -> impl Iterator<Item = KnobPoint> + '_ {
        self.tox_values.iter().flat_map(move |&tox| {
            self.vth_values
                .iter()
                .map(move |&vth| KnobPoint { vth, tox })
        })
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.vth_values.len() * self.tox_values.len()
    }

    /// `true` when the grid is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the grid point nearest to an arbitrary legal knob point.
    /// Snapping to an empty axis (impossible via the constructors)
    /// leaves that coordinate where it is.
    pub fn snap(&self, p: KnobPoint) -> KnobPoint {
        let vth = self
            .vth_values
            .iter()
            .min_by(|a, b| (a.0 - p.vth.0).abs().total_cmp(&(b.0 - p.vth.0).abs()))
            .copied()
            .unwrap_or(p.vth);
        let tox = self
            .tox_values
            .iter()
            .min_by(|a, b| (a.0 - p.tox.0).abs().total_cmp(&(b.0 - p.tox.0).abs()))
            .copied()
            .unwrap_or(p.tox);
        KnobPoint { vth, tox }
    }
}

impl Default for KnobGrid {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_point_validates_ranges() {
        assert!(KnobPoint::new(Volts(0.2), Angstroms(10.0)).is_ok());
        assert!(KnobPoint::new(Volts(0.5), Angstroms(14.0)).is_ok());
        assert!(matches!(
            KnobPoint::new(Volts(0.19), Angstroms(12.0)),
            Err(DeviceError::VthOutOfRange { .. })
        ));
        assert!(matches!(
            KnobPoint::new(Volts(0.3), Angstroms(14.5)),
            Err(DeviceError::ToxOutOfRange { .. })
        ));
        assert!(KnobPoint::new(Volts(f64::NAN), Angstroms(12.0)).is_err());
    }

    #[test]
    fn named_corners_are_legal() {
        for p in [
            KnobPoint::fastest(),
            KnobPoint::lowest_leakage(),
            KnobPoint::nominal(),
            KnobPoint::default(),
        ] {
            assert!(KnobPoint::new(p.vth(), p.tox()).is_ok(), "{p}");
        }
    }

    #[test]
    fn paper_grid_shape() {
        let g = KnobGrid::paper();
        assert_eq!(g.len(), 279);
        assert!(!g.is_empty());
        // 10 mV steps.
        let step = g.vth_values()[1].0 - g.vth_values()[0].0;
        assert!((step - 0.01).abs() < 1e-12);
        // 0.5 Å steps.
        let tstep = g.tox_values()[1].0 - g.tox_values()[0].0;
        assert!((tstep - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_endpoints_span_full_range() {
        let g = KnobGrid::uniform(5, 3).unwrap();
        assert!((g.vth_values()[0].0 - VTH_RANGE.0).abs() < 1e-12);
        assert!((g.vth_values()[4].0 - VTH_RANGE.1).abs() < 1e-12);
        assert!((g.tox_values()[0].0 - TOX_RANGE.0).abs() < 1e-12);
        assert!((g.tox_values()[2].0 - TOX_RANGE.1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_grid_rejected() {
        assert!(matches!(
            KnobGrid::uniform(1, 5),
            Err(DeviceError::DegenerateGrid { axis: "Vth" })
        ));
        assert!(matches!(
            KnobGrid::uniform(5, 1),
            Err(DeviceError::DegenerateGrid { axis: "Tox" })
        ));
    }

    #[test]
    fn every_grid_point_is_constructible() {
        for p in KnobGrid::paper().points() {
            assert!(KnobPoint::new(p.vth(), p.tox()).is_ok(), "{p}");
        }
    }

    #[test]
    fn snap_finds_nearest() {
        let g = KnobGrid::uniform(4, 3).unwrap(); // Vth: .2 .3 .4 .5 ; Tox: 10 12 14
        let p = KnobPoint::new(Volts(0.33), Angstroms(11.2)).unwrap();
        let s = g.snap(p);
        assert!((s.vth().0 - 0.3).abs() < 1e-12);
        assert!((s.tox().0 - 12.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let p = KnobPoint::nominal();
        assert_eq!(format!("{p}"), "(Vth=0.300 V, Tox=12.0 Å)");
    }
}
