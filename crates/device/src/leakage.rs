//! Per-transistor leakage mechanisms: subthreshold conduction, gate
//! tunnelling and a junction floor.
//!
//! Total leakage is what distinguishes this paper from the prior art it
//! cites: earlier cache-leakage work optimised subthreshold only, but with
//! aggressive `Tox` scaling the gate current "can potentially surpass the
//! subthreshold leakage at low Tox". Both mechanisms are first-class here,
//! and [`LeakageBreakdown`] keeps them separable for analysis.

use crate::knobs::KnobPoint;
use crate::tech::TechnologyNode;
use crate::units::{Amperes, Meters, Microns, Volts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Conduction state of a transistor for leakage accounting.
///
/// * An **off** device leaks subthreshold current source-to-drain and a
///   reduced (edge-direct-tunnelling) gate current.
/// * An **on** device leaks full gate-tunnelling current through the
///   inverted channel but no subthreshold current (its channel conducts by
///   design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConductionState {
    /// Gate at the inactive rail; channel nominally non-conducting.
    Off,
    /// Gate at the active rail; channel inverted.
    On,
}

/// Subthreshold (weak-inversion) drain current of an off transistor with
/// `Vgs = 0` and `Vds = Vdd`, including DIBL.
///
/// `Isub = μ·Cox·(W/L)·vT²·e^((η·Vdd − Vth)/(n·vT))·(1 − e^(−Vdd/vT))`
///
/// The drawn length is supplied by the caller (it is a function of `Tox`
/// through [`TechnologyNode::drawn_length`], but peripheral logic may use
/// longer-than-minimum devices).
pub fn subthreshold_current(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    width: Microns,
    length: Meters,
) -> Amperes {
    let vt = tech.thermal_voltage().0;
    let n = tech.subthreshold_n(knobs.tox());
    let cox = tech.cox(knobs.tox());
    let eta = tech.dibl(length);
    let vdd = tech.vdd().0;
    let w_over_l = width.meters().0 / length.0;
    let exponent = (eta * vdd - knobs.vth().0) / (n * vt);
    let drain_term = 1.0 - (-vdd / vt).exp();
    Amperes(tech.mu_eff() * cox * w_over_l * vt * vt * exponent.exp() * drain_term)
}

/// Gate-tunnelling current through the oxide.
///
/// `Ig = J0·(Vox/1V)²·(Tox_min/Tox)²·e^(−Bg·(Tox − Tox_min))·W·L`,
/// attenuated by [`TechnologyNode::gate_off_factor`] for off devices
/// (edge tunnelling through the overlap only).
pub fn gate_current(
    tech: &TechnologyNode,
    knobs: KnobPoint,
    width: Microns,
    length: Meters,
    state: ConductionState,
) -> Amperes {
    let (j0, bg) = tech.gate_tunnelling();
    let tox = knobs.tox().0;
    let tox0 = tech.tox_min().0;
    let vox = tech.vdd().0; // full supply across the oxide of an on device
    let density = j0 * (vox * vox) * (tox0 / tox) * (tox0 / tox) * (-(bg) * (tox - tox0)).exp();
    let area = width.meters().0 * length.0;
    let state_factor = match state {
        ConductionState::On => 1.0,
        ConductionState::Off => tech.gate_off_factor(),
    };
    Amperes(density * area * state_factor)
}

/// Junction (band-to-band tunnelling plus reverse diode) leakage; a small,
/// knob-independent floor proportional to device width.
pub fn junction_current(tech: &TechnologyNode, width: Microns) -> Amperes {
    Amperes(tech.junction_per_width() * width.meters().0)
}

/// Leakage power split by mechanism.
///
/// Implements `Add`/`Sum` so component breakdowns aggregate naturally, and
/// `Mul<f64>` for scaling by device counts:
///
/// ```
/// use nm_device::{Mosfet, KnobPoint, TechnologyNode, units::Microns};
///
/// let tech = TechnologyNode::bptm65();
/// let knobs = KnobPoint::nominal();
/// let m = Mosfet::nmos(Microns(0.2), tech.drawn_length(knobs.tox()), knobs);
/// let per_cell = m.leakage(&tech) * 2.5; // ≈ off devices per SRAM cell
/// let array = per_cell * 1024.0;
/// assert!(array.total() > per_cell.total());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LeakageBreakdown {
    /// Subthreshold conduction power.
    pub subthreshold: Watts,
    /// Gate-tunnelling power.
    pub gate: Watts,
    /// Junction/BTBT floor power.
    pub junction: Watts,
}

impl LeakageBreakdown {
    /// A breakdown with all mechanisms at zero.
    pub const ZERO: Self = LeakageBreakdown {
        subthreshold: Watts(0.0),
        gate: Watts(0.0),
        junction: Watts(0.0),
    };

    /// Builds a breakdown from per-mechanism currents at the supply
    /// voltage.
    pub fn from_currents(vdd: Volts, sub: Amperes, gate: Amperes, junction: Amperes) -> Self {
        LeakageBreakdown {
            subthreshold: sub * vdd,
            gate: gate * vdd,
            junction: junction * vdd,
        }
    }

    /// Total leakage power across all mechanisms.
    pub fn total(&self) -> Watts {
        self.subthreshold + self.gate + self.junction
    }

    /// Fraction of the total contributed by gate tunnelling (0 when the
    /// total is zero).
    pub fn gate_fraction(&self) -> f64 {
        let t = self.total().0;
        if t == 0.0 {
            0.0
        } else {
            self.gate.0 / t
        }
    }
}

impl Add for LeakageBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        LeakageBreakdown {
            subthreshold: self.subthreshold + rhs.subthreshold,
            gate: self.gate + rhs.gate,
            junction: self.junction + rhs.junction,
        }
    }
}

impl AddAssign for LeakageBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for LeakageBreakdown {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        LeakageBreakdown {
            subthreshold: self.subthreshold * rhs,
            gate: self.gate * rhs,
            junction: self.junction * rhs,
        }
    }
}

impl Sum for LeakageBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for LeakageBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} mW (sub {:.3}, gate {:.3}, junc {:.3})",
            self.total().milli(),
            self.subthreshold.milli(),
            self.gate.milli(),
            self.junction.milli()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Angstroms;

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    fn knobs(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn subthreshold_decays_one_decade_per_90mv() {
        let t = tech();
        let k = knobs(0.30, 12.0);
        let l = t.drawn_length(k.tox());
        let lo = subthreshold_current(&t, knobs(0.30, 12.0), Microns(1.0), l).0;
        let hi = subthreshold_current(&t, knobs(0.39, 12.0), Microns(1.0), l).0;
        let decades = (lo / hi).log10();
        assert!((0.9..1.1).contains(&decades), "decades = {decades}");
    }

    #[test]
    fn subthreshold_magnitude_is_plausible() {
        // ≈ hundreds of nA/µm at the hot, low-Vth, thin-oxide corner.
        let t = tech();
        let k = knobs(0.20, 10.0);
        let i = subthreshold_current(&t, k, Microns(1.0), t.drawn_length(k.tox()));
        assert!(
            (50.0..2000.0).contains(&i.nano()),
            "Isub = {} nA/µm",
            i.nano()
        );
    }

    #[test]
    fn gate_current_decade_per_two_angstrom() {
        let t = tech();
        let k10 = knobs(0.3, 10.0);
        let k12 = knobs(0.3, 12.0);
        let i10 = gate_current(
            &t,
            k10,
            Microns(1.0),
            t.drawn_length(k10.tox()),
            ConductionState::On,
        )
        .0;
        let i12 = gate_current(
            &t,
            k12,
            Microns(1.0),
            t.drawn_length(k12.tox()),
            ConductionState::On,
        )
        .0;
        let decades = (i10 / i12).log10();
        assert!((0.8..1.6).contains(&decades), "decades = {decades}");
    }

    #[test]
    fn gate_dominates_at_thin_oxide() {
        // At Tox = 10 Å and mid Vth, gate tunnelling exceeds subthreshold —
        // the paper's motivating observation.
        let t = tech();
        let k = knobs(0.35, 10.0);
        let l = t.drawn_length(k.tox());
        let ig = gate_current(&t, k, Microns(1.0), l, ConductionState::On);
        let isub = subthreshold_current(&t, k, Microns(1.0), l);
        assert!(
            ig.0 > isub.0,
            "gate {} nA vs sub {} nA",
            ig.nano(),
            isub.nano()
        );
    }

    #[test]
    fn subthreshold_dominates_at_thick_oxide_low_vth() {
        let t = tech();
        let k = knobs(0.20, 14.0);
        let l = t.drawn_length(k.tox());
        let ig = gate_current(&t, k, Microns(1.0), l, ConductionState::On);
        let isub = subthreshold_current(&t, k, Microns(1.0), l);
        assert!(isub.0 > ig.0);
    }

    #[test]
    fn off_state_gate_current_attenuated() {
        let t = tech();
        let k = knobs(0.3, 11.0);
        let l = t.drawn_length(k.tox());
        let on = gate_current(&t, k, Microns(1.0), l, ConductionState::On).0;
        let off = gate_current(&t, k, Microns(1.0), l, ConductionState::Off).0;
        assert!((off / on - t.gate_off_factor()).abs() < 1e-12);
    }

    #[test]
    fn junction_scales_with_width() {
        let t = tech();
        let i1 = junction_current(&t, Microns(1.0)).0;
        let i2 = junction_current(&t, Microns(2.0)).0;
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hotter_means_leakier() {
        let t = tech();
        let hot = t.at_temperature(crate::units::Kelvin::from_celsius(110.0));
        let k = knobs(0.35, 12.0);
        let l = t.drawn_length(k.tox());
        assert!(
            subthreshold_current(&hot, k, Microns(1.0), l).0
                > subthreshold_current(&t, k, Microns(1.0), l).0
        );
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = LeakageBreakdown {
            subthreshold: Watts(1.0),
            gate: Watts(2.0),
            junction: Watts(0.5),
        };
        let b = a + a;
        assert!((b.total().0 - 7.0).abs() < 1e-12);
        let c = a * 3.0;
        assert!((c.gate.0 - 6.0).abs() < 1e-12);
        let s: LeakageBreakdown = vec![a, a, a].into_iter().sum();
        assert!((s.total().0 - 10.5).abs() < 1e-12);
        assert!((a.gate_fraction() - 2.0 / 3.5).abs() < 1e-12);
        assert_eq!(LeakageBreakdown::ZERO.gate_fraction(), 0.0);
    }

    #[test]
    fn from_currents_multiplies_by_vdd() {
        let b = LeakageBreakdown::from_currents(
            Volts(1.0),
            Amperes(1e-9),
            Amperes(2e-9),
            Amperes(3e-9),
        );
        assert!((b.total().0 - 6e-9).abs() < 1e-21);
    }

    #[test]
    fn display_mentions_all_mechanisms() {
        let s = LeakageBreakdown::ZERO.to_string();
        assert!(s.contains("sub") && s.contains("gate") && s.contains("junc"));
    }
}
