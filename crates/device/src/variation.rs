//! Process variation: what die-to-die `Vth`/`Tox` spread does to a
//! leakage optimum.
//!
//! The paper optimises at nominal process corners; any real deployment of
//! its methodology must survive variation, and leakage is *exponentially*
//! sensitive to `Vth` — a symmetric `Vth` spread therefore raises the
//! **mean** leakage above nominal. For a Gaussian `ΔVth` with standard
//! deviation `σ`, subthreshold leakage is lognormal with mean
//! amplification `exp(σ²/(2·(n·vT)²))` ([`subthreshold_amplification`]).
//!
//! [`MonteCarlo`] samples whole-die corners and summarises any
//! caller-supplied metric into a [`VariationDistribution`]; the
//! `nm-cache-core` variation study uses it to compare nominal versus
//! 95th-percentile leakage of the paper's optima.

use crate::knobs::{KnobPoint, TOX_RANGE, VTH_RANGE};
use crate::units::{Angstroms, Volts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Die-to-die variation magnitudes (1-sigma).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the global `Vth` shift.
    pub sigma_vth: Volts,
    /// Standard deviation of the global `Tox` shift.
    pub sigma_tox: Angstroms,
}

impl VariationModel {
    /// A representative 65 nm corner spread: 20 mV of `Vth`, 0.25 Å of
    /// `Tox` (one sigma, die-to-die).
    pub fn typical_65nm() -> Self {
        VariationModel {
            sigma_vth: Volts(0.020),
            sigma_tox: Angstroms(0.25),
        }
    }

    /// A variation model with no spread (degenerate; for testing).
    pub fn none() -> Self {
        VariationModel {
            sigma_vth: Volts(0.0),
            sigma_tox: Angstroms(0.0),
        }
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::typical_65nm()
    }
}

/// Mean-leakage amplification of a subthreshold-dominated device under
/// Gaussian `Vth` spread: `E[e^(−ΔV/(n·vT))] = e^(σ²/(2(n·vT)²))`.
///
/// `n_vt` is the subthreshold slope voltage `n·vT` in volts.
///
/// ```
/// use nm_device::variation::subthreshold_amplification;
/// use nm_device::units::Volts;
///
/// // 20 mV sigma on a ~39 mV/e slope: ~14 % mean uplift.
/// let amp = subthreshold_amplification(Volts(0.020), Volts(0.0395));
/// assert!(amp > 1.10 && amp < 1.20, "amp = {amp}");
/// ```
pub fn subthreshold_amplification(sigma_vth: Volts, n_vt: Volts) -> f64 {
    let r = sigma_vth.0 / n_vt.0;
    (0.5 * r * r).exp()
}

/// Summary statistics of a sampled metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationDistribution {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub samples: usize,
}

impl VariationDistribution {
    /// Summarises a sample vector.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "distribution needs at least one sample");
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let pct = |p: f64| values[(((n - 1) as f64) * p).round() as usize];
        VariationDistribution {
            mean,
            std_dev: var.sqrt(),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            min: values[0],
            max: values[n - 1],
            samples: n,
        }
    }
}

/// A deterministic Monte-Carlo sampler of die corners.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    model: VariationModel,
    rng: StdRng,
}

impl MonteCarlo {
    /// Creates a sampler with a fixed seed.
    pub fn new(model: VariationModel, seed: u64) -> Self {
        MonteCarlo {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one die corner around `nominal`, clamped to the legal knob
    /// window (a fab would not ship outside-spec material).
    #[allow(clippy::expect_used)] // fingerprinted in analyze.allow: clamped to legal window
    pub fn sample_corner(&mut self, nominal: KnobPoint) -> KnobPoint {
        let dv = gaussian(&mut self.rng) * self.model.sigma_vth.0;
        let dt = gaussian(&mut self.rng) * self.model.sigma_tox.0;
        let vth = (nominal.vth().0 + dv).clamp(VTH_RANGE.0, VTH_RANGE.1);
        let tox = (nominal.tox().0 + dt).clamp(TOX_RANGE.0, TOX_RANGE.1);
        KnobPoint::new(Volts(vth), Angstroms(tox)).expect("clamped to legal window")
    }

    /// Evaluates `metric` at `samples` die corners around `nominal` and
    /// summarises the results.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is zero.
    pub fn run(
        &mut self,
        nominal: KnobPoint,
        samples: usize,
        mut metric: impl FnMut(KnobPoint) -> f64,
    ) -> VariationDistribution {
        assert!(samples > 0, "monte carlo needs at least one sample");
        let values: Vec<f64> = (0..samples)
            .map(|_| {
                let corner = self.sample_corner(nominal);
                metric(corner)
            })
            .collect();
        VariationDistribution::from_samples(values)
    }
}

/// Standard normal variate via Box–Muller (deterministic given the RNG).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::subthreshold_current;
    use crate::tech::TechnologyNode;
    use crate::units::Microns;

    #[test]
    fn distribution_orders_percentiles() {
        let d = VariationDistribution::from_samples((1..=100).map(f64::from).collect());
        assert!(d.min <= d.p50 && d.p50 <= d.p95 && d.p95 <= d.p99 && d.p99 <= d.max);
        assert!((d.mean - 50.5).abs() < 1e-9);
        assert_eq!(d.samples, 100);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_distribution_panics() {
        let _ = VariationDistribution::from_samples(vec![]);
    }

    #[test]
    fn zero_sigma_reproduces_nominal() {
        let mut mc = MonteCarlo::new(VariationModel::none(), 1);
        let nominal = KnobPoint::nominal();
        let d = mc.run(nominal, 16, |p| p.vth().0);
        assert_eq!(d.min, nominal.vth().0);
        assert_eq!(d.max, nominal.vth().0);
        assert!(d.std_dev.abs() < 1e-12, "std = {}", d.std_dev);
    }

    #[test]
    fn corners_stay_legal() {
        let mut mc = MonteCarlo::new(
            VariationModel {
                sigma_vth: Volts(0.2), // huge, to force clamping
                sigma_tox: Angstroms(3.0),
            },
            7,
        );
        for _ in 0..500 {
            let p = mc.sample_corner(KnobPoint::nominal());
            assert!(KnobPoint::new(p.vth(), p.tox()).is_ok());
        }
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let run = |seed| {
            let mut mc = MonteCarlo::new(VariationModel::typical_65nm(), seed);
            mc.run(KnobPoint::nominal(), 64, |p| p.vth().0 + p.tox().0)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn mc_leakage_amplification_matches_analytic() {
        // Mean subthreshold leakage under Vth spread should match the
        // lognormal closed form within Monte-Carlo noise.
        let tech = TechnologyNode::bptm65();
        let nominal = KnobPoint::nominal();
        let l = tech.drawn_length(nominal.tox());
        let n_vt = Volts(tech.subthreshold_n(nominal.tox()) * tech.thermal_voltage().0);
        let sigma = Volts(0.015); // small enough that clamping is negligible
        let mut mc = MonteCarlo::new(
            VariationModel {
                sigma_vth: sigma,
                sigma_tox: Angstroms(0.0),
            },
            13,
        );
        let nominal_leak = subthreshold_current(&tech, nominal, Microns(1.0), l).0;
        let d = mc.run(nominal, 4000, |p| {
            subthreshold_current(&tech, p, Microns(1.0), l).0
        });
        let measured_amp = d.mean / nominal_leak;
        let analytic_amp = subthreshold_amplification(sigma, n_vt);
        assert!(
            (measured_amp / analytic_amp - 1.0).abs() < 0.05,
            "measured {measured_amp:.4} vs analytic {analytic_amp:.4}"
        );
    }

    #[test]
    fn amplification_grows_with_sigma() {
        let n_vt = Volts(0.04);
        let a1 = subthreshold_amplification(Volts(0.01), n_vt);
        let a2 = subthreshold_amplification(Volts(0.03), n_vt);
        assert!(a2 > a1 && a1 > 1.0);
        assert_eq!(subthreshold_amplification(Volts(0.0), n_vt), 1.0);
    }
}
