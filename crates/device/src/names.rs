//! Telemetry names emitted by the device models.
//!
//! Every fixed metric name this crate records lives here as a `pub
//! const`, and each one must also appear in the workspace-root
//! `telemetry_names.txt` manifest — the D6 static-analysis rule
//! (`nmcache analyze`) checks both directions, so a typo'd literal can
//! never silently fork a time series. The per-technology counters
//! (`device.tech.<name>`, recorded by `nm-cache-core`) are derived from
//! profile names at runtime and are exempt by design.

/// Span: one Eq. 1 leakage-surface fit.
pub const FIT_LEAKAGE: &str = "device.fit.leakage";
/// Span: one Eq. 2 delay-surface fit.
pub const FIT_DELAY: &str = "device.fit.delay";
/// Counter: fitted-surface evaluations (leakage and delay).
pub const EVALUATE: &str = "device.evaluate";
/// Counter: range-guarded fitted-surface evaluations.
pub const TRY_EVALUATE: &str = "device.try_evaluate";
