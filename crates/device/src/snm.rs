//! Static noise margin of the 6T cell — the stability constraint behind
//! the paper's `Tox` scaling rule.
//!
//! The paper (Section 2): increasing `Tox` at fixed drawn length degrades
//! gate control (DIBL), so the channel length must scale up, and "in
//! order to maintain memory cell stability, the widths of the transistors
//! in the memory cell need to be adjusted proportionately". This module
//! provides a compact read-SNM model that makes the rule checkable: the
//! margin holds up under the scaling rule and collapses without it.
//!
//! The model is a calibrated Seevinck-style approximation:
//!
//! `SNM ≈ k_vth·Vth + k_β·vT·ln(β) − k_dibl·η_eff·Vdd + offset`
//!
//! with `β` the cell ratio (pull-down strength over access strength) and
//! `η_eff` the oxide-degraded DIBL `η(L)·(Tox/Tox_min)²`.

use crate::knobs::KnobPoint;
use crate::tech::TechnologyNode;
use crate::units::{Meters, Volts};

/// Vth coupling into the margin.
const K_VTH: f64 = 0.45;

/// Cell-ratio (β) coupling, multiplying `vT·ln(β)`.
const K_BETA: f64 = 2.0;

/// DIBL degradation weight.
const K_DIBL: f64 = 2.0;

/// Calibration offset placing the nominal cell at ≈ 160 mV.
const OFFSET: f64 = 0.195;

/// Minimum read margin considered stable at this node (industry rule of
/// thumb: a cell below ~100 mV of read SNM is not manufacturable).
pub const MIN_STABLE_SNM: Volts = Volts(0.100);

/// Oxide-degraded DIBL: thicker oxide at a given channel length weakens
/// gate control quadratically in the thickness ratio.
pub fn effective_dibl(tech: &TechnologyNode, knobs: KnobPoint, length: Meters) -> f64 {
    let r = knobs.tox() / tech.tox_min();
    tech.dibl(length) * r * r
}

/// Read static noise margin of a 6T cell.
///
/// * `cell_ratio` — β, pull-down width over access width (≥ 1 for a
///   readable cell).
/// * `length` — the drawn channel length actually used (pass
///   [`TechnologyNode::drawn_length`] to apply the paper's scaling rule,
///   or the minimum length to see what happens without it).
///
/// ```
/// use nm_device::snm::{read_snm, MIN_STABLE_SNM};
/// use nm_device::{KnobPoint, TechnologyNode};
///
/// let tech = TechnologyNode::bptm65();
/// let knobs = KnobPoint::nominal();
/// let snm = read_snm(&tech, 1.33, knobs, tech.drawn_length(knobs.tox()));
/// assert!(snm >= MIN_STABLE_SNM);
/// ```
pub fn read_snm(tech: &TechnologyNode, cell_ratio: f64, knobs: KnobPoint, length: Meters) -> Volts {
    assert!(
        cell_ratio > 0.0 && cell_ratio.is_finite(),
        "cell ratio must be positive, got {cell_ratio}"
    );
    let vt = tech.thermal_voltage().0;
    let eta = effective_dibl(tech, knobs, length);
    let snm = K_VTH * knobs.vth().0 + K_BETA * vt * cell_ratio.ln() - K_DIBL * eta * tech.vdd().0
        + OFFSET;
    Volts(snm.max(0.0))
}

/// `true` when the margin meets [`MIN_STABLE_SNM`].
pub fn is_stable(snm: Volts) -> bool {
    snm.0 >= MIN_STABLE_SNM.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Angstroms;

    const BETA: f64 = 0.20 / 0.15; // default cell's pull-down / access

    fn tech() -> TechnologyNode {
        TechnologyNode::bptm65()
    }

    fn k(vth: f64, tox: f64) -> KnobPoint {
        KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap()
    }

    #[test]
    fn nominal_cell_has_healthy_margin() {
        let t = tech();
        let p = KnobPoint::nominal();
        let snm = read_snm(&t, BETA, p, t.drawn_length(p.tox()));
        assert!(
            (0.14..0.25).contains(&snm.0),
            "nominal SNM = {} mV",
            snm.0 * 1e3
        );
    }

    #[test]
    fn higher_vth_is_more_stable() {
        let t = tech();
        let lo = read_snm(&t, BETA, k(0.2, 12.0), t.drawn_length(Angstroms(12.0)));
        let hi = read_snm(&t, BETA, k(0.5, 12.0), t.drawn_length(Angstroms(12.0)));
        assert!(hi.0 > lo.0);
    }

    #[test]
    fn stronger_cell_ratio_is_more_stable() {
        let t = tech();
        let p = KnobPoint::nominal();
        let l = t.drawn_length(p.tox());
        assert!(read_snm(&t, 2.0, p, l).0 > read_snm(&t, 1.0, p, l).0);
    }

    #[test]
    fn scaling_rule_preserves_stability_across_tox() {
        // With the paper's drawn-length scaling, every legal knob point
        // above the minimum Vth stays manufacturable.
        let t = tech();
        for tox in [10.0, 11.0, 12.0, 13.0, 14.0] {
            let p = k(0.25, tox);
            let snm = read_snm(&t, BETA, p, t.drawn_length(p.tox()));
            assert!(
                is_stable(snm),
                "Tox = {tox} Å: SNM = {} mV with scaling",
                snm.0 * 1e3
            );
        }
    }

    #[test]
    fn without_scaling_thick_oxide_collapses_the_margin() {
        // Holding the drawn length at minimum while thickening the oxide
        // — exactly what the paper says must not be done — costs a large
        // fraction of the margin relative to the scaled cell.
        let t = tech();
        let p = k(0.25, 14.0);
        let scaled = read_snm(&t, BETA, p, t.drawn_length(p.tox()));
        let unscaled = read_snm(&t, BETA, p, t.lgate_min());
        assert!(
            unscaled.0 < scaled.0 - 0.025,
            "unscaled {} mV vs scaled {} mV",
            unscaled.0 * 1e3,
            scaled.0 * 1e3
        );
    }

    #[test]
    fn effective_dibl_grows_with_tox_at_fixed_length() {
        let t = tech();
        let l = t.lgate_min();
        let thin = effective_dibl(&t, k(0.3, 10.0), l);
        let thick = effective_dibl(&t, k(0.3, 14.0), l);
        assert!((thick / thin - 1.96).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cell ratio must be positive")]
    fn zero_ratio_panics() {
        let t = tech();
        let _ = read_snm(&t, 0.0, KnobPoint::nominal(), t.lgate_min());
    }

    #[test]
    fn snm_never_negative() {
        let t = tech();
        // Worst legal corner with a weak cell, unscaled.
        let snm = read_snm(&t, 1.0, k(0.2, 14.0), t.lgate_min());
        assert!(snm.0 >= 0.0);
    }
}
