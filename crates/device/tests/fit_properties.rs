//! Property tests for the fitting kernel and the physical models.

use nm_device::fit::{least_squares, r_squared, solve_linear, DelayFit, LeakageFit, Sample};
use nm_device::snm::read_snm;
use nm_device::units::{Angstroms, Kelvin, Microns, Volts};
use nm_device::{KnobGrid, KnobPoint, Mosfet, TechnologyNode};
use proptest::prelude::*;

fn grid_samples(mut f: impl FnMut(KnobPoint) -> f64) -> Vec<Sample> {
    KnobGrid::paper()
        .points()
        .map(|p| Sample {
            knobs: p,
            value: f(p),
        })
        .collect::<Vec<_>>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `solve_linear` inverts random diagonally dominant systems.
    #[test]
    fn solve_linear_inverts_dominant_systems(
        entries in prop::collection::vec(-1.0f64..1.0, 9),
        x_true in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        let mut m = vec![vec![0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                m[i][j] = entries[i * 3 + j];
            }
            m[i][i] += 4.0; // force diagonal dominance (non-singular)
        }
        let b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| m[i][j] * x_true[j]).sum())
            .collect();
        let x = solve_linear(m, b).expect("dominant systems are solvable");
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    /// Least squares on an exactly-linear response recovers the plane for
    /// any coefficients.
    #[test]
    fn least_squares_recovers_random_planes(
        c0 in -10.0f64..10.0,
        c1 in -10.0f64..10.0,
        c2 in -10.0f64..10.0,
    ) {
        let design: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x = i as f64;
                vec![1.0, x, (x * 0.37).sin()]
            })
            .collect();
        let y: Vec<f64> = design
            .iter()
            .map(|r| c0 * r[0] + c1 * r[1] + c2 * r[2])
            .collect();
        let c = least_squares(&design, &y).expect("full-rank design");
        prop_assert!((c[0] - c0).abs() < 1e-6);
        prop_assert!((c[1] - c1).abs() < 1e-6);
        prop_assert!((c[2] - c2).abs() < 1e-6);
    }

    /// The Eq. 1 fitter recovers synthetic surfaces of its own form even
    /// with multiplicative noise, with high R².
    #[test]
    fn leakage_fit_survives_noise(
        a0 in 1e-5f64..1e-3,
        a1 in 1e-3f64..1e-1,
        exp_vth in -35.0f64..-12.0,
        a2 in 1.0f64..1e3,
        exp_tox in -2.5f64..-0.6,
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-noise from the seed (proptest supplies the
        // randomness; keep the sample values reproducible per case).
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            1.0 + 0.02 * ((state % 1000) as f64 / 500.0 - 1.0)
        };
        let truth = |p: KnobPoint| {
            a0 + a1 * (exp_vth * p.vth().0).exp() + a2 * (exp_tox * p.tox().0).exp()
        };
        let samples = grid_samples(|p| truth(p) * noise());
        let fit = LeakageFit::fit(&samples).expect("fit converges");
        // Judge against the noise-free surface: the fitted model must track
        // it within a few percent RMS (an R² criterion on the *noisy*
        // samples would be unreachable for nearly-constant surfaces where
        // the 2 % noise dominates the signal variance).
        let mut num = 0.0;
        let mut den = 0.0;
        for p in KnobGrid::paper().points() {
            let t = truth(p);
            let e = fit.evaluate(p) - t;
            num += e * e;
            den += t * t;
        }
        let rel_rms = (num / den).sqrt();
        prop_assert!(rel_rms < 0.03, "relative RMS = {rel_rms}");
    }

    /// The Eq. 2 fitter recovers synthetic delay surfaces.
    #[test]
    fn delay_fit_recovers_surfaces(
        k0 in 10.0f64..200.0,
        k1 in 0.5f64..20.0,
        k3 in 1.0f64..8.0,
        k2 in 1.0f64..50.0,
    ) {
        let samples = grid_samples(|p| k0 + k1 * (k3 * p.vth().0).exp() + k2 * p.tox().0);
        let fit = DelayFit::fit(&samples).expect("fit converges");
        prop_assert!(fit.r_squared > 0.9999, "R² = {}", fit.r_squared);
        prop_assert!((fit.k2 - k2).abs() / k2 < 0.05, "k2 {} vs {}", fit.k2, k2);
    }

    /// R² of any prediction never exceeds 1.
    #[test]
    fn r_squared_bounded_above(
        obs in prop::collection::vec(-10.0f64..10.0, 3..30),
        shift in -1.0f64..1.0,
    ) {
        let pred: Vec<f64> = obs.iter().map(|o| o + shift).collect();
        let r = r_squared(&obs, &pred);
        prop_assert!(r <= 1.0 + 1e-12);
    }

    /// Total leakage is monotone in temperature for every legal knob
    /// point (hotter silicon always leaks more).
    #[test]
    fn leakage_monotone_in_temperature(
        vth in 0.2f64..0.5,
        tox in 10.0f64..14.0,
        t_low_c in 0.0f64..80.0,
        dt in 5.0f64..60.0,
    ) {
        let knobs = KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap();
        let base = TechnologyNode::bptm65();
        let cold = base.at_temperature(Kelvin::from_celsius(t_low_c));
        let hot = base.at_temperature(Kelvin::from_celsius(t_low_c + dt));
        let l = base.drawn_length(knobs.tox());
        let m = Mosfet::nmos(Microns(1.0), l, knobs);
        prop_assert!(m.leakage(&hot).total().0 >= m.leakage(&cold).total().0);
    }

    /// Read SNM is monotone in Vth and in cell ratio everywhere on the
    /// legal window (with the scaling rule applied).
    #[test]
    fn snm_monotone_in_vth_and_beta(
        vth in 0.2f64..0.44,
        tox in 10.0f64..14.0,
        beta in 1.0f64..2.5,
    ) {
        let tech = TechnologyNode::bptm65();
        let p = |v: f64| KnobPoint::new(Volts(v), Angstroms(tox)).unwrap();
        let l = tech.drawn_length(Angstroms(tox));
        let base = read_snm(&tech, beta, p(vth), l);
        let hi_v = read_snm(&tech, beta, p(vth + 0.05), l);
        let hi_b = read_snm(&tech, beta + 0.3, p(vth), l);
        prop_assert!(hi_v.0 >= base.0);
        prop_assert!(hi_b.0 >= base.0);
    }

    /// The drawn-length scaling rule is monotone and bounded on the legal
    /// Tox window.
    #[test]
    fn drawn_length_scaling_bounded(tox in 10.0f64..14.0) {
        let tech = TechnologyNode::bptm65();
        let l = tech.drawn_length(Angstroms(tox));
        prop_assert!(l.0 >= tech.lgate_min().0);
        prop_assert!(l.0 <= tech.lgate_min().0 * 1.25);
    }
}
