//! Diagnostic: prints per-component delay and leakage of the 16 KB cache
//! across representative knob corners (quick calibration check).

use nm_device::*;
use nm_geometry::*;

fn main() {
    let tech = TechnologyNode::bptm65();
    let cfg = CacheConfig::new(16 * 1024, 64, 4).unwrap();
    let c = CacheCircuit::new(cfg, &tech);
    for (vth, tox) in [
        (0.2, 10.0),
        (0.2, 12.0),
        (0.2, 14.0),
        (0.3, 12.0),
        (0.4, 12.0),
        (0.5, 10.0),
        (0.5, 12.0),
        (0.5, 14.0),
    ] {
        let kp = KnobPoint::new(Volts(vth), Angstroms(tox)).unwrap();
        let m = c.analyze(&ComponentKnobs::uniform(kp));
        print!(
            "vth={vth} tox={tox}: total={:7.1}ps leak={:8.3}mW |",
            m.access_time().picos(),
            m.leakage().total().milli()
        );
        for id in COMPONENT_IDS {
            let cm = m.component(id);
            print!(
                " {}={:6.1}ps/{:7.4}mW",
                id,
                cm.delay.picos(),
                cm.leakage.total().milli()
            );
        }
        println!();
    }
}
