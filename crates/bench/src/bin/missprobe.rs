//! Diagnostic: prints the averaged miss-rate table for the standard sizes.
use nm_archsim::workload::SuiteKind;
use nm_archsim::MissRateTable;

fn main() {
    let l1s = [4 * 1024u64, 16 * 1024, 64 * 1024];
    let l2s = [256 * 1024u64, 1024 * 1024, 4 * 1024 * 1024, 8 * 1024 * 1024];
    for suite in [SuiteKind::Spec2000, SuiteKind::TpcC, SuiteKind::SpecWeb] {
        let t = MissRateTable::build(&l1s, &l2s, &[suite], 2005, 300_000, 600_000);
        println!("--- {} ---", suite.name());
        for (&(l1, l2), s) in t.iter() {
            println!(
                "L1={:>3}K L2={:>5}K  m1={:.4} m2={:.4}",
                l1 / 1024,
                l2 / 1024,
                s.l1_miss_rate,
                s.l2_local_miss_rate
            );
        }
    }
}
