//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates one figure or table of the paper: it
//! prints the artefact to stdout, writes the CSV under
//! `target/paper-artifacts/`, and then lets Criterion time the core
//! computation kernel.

use nm_cache_core::report::Series;
use nm_cache_core::Table;
use std::path::PathBuf;

/// Directory the regenerated figure/table CSVs land in.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-artifacts");
    std::fs::create_dir_all(&dir).expect("can create artifact directory");
    dir
}

/// Prints a table and persists it as CSV.
pub fn emit_table(name: &str, table: &Table) {
    println!("\n{table}");
    let path = artifact_dir().join(format!("{name}.csv"));
    table.write_csv(&path).expect("can write artifact CSV");
    println!("[artifact] {}", path.display());
}

/// Prints a set of series and persists them as one CSV.
pub fn emit_series(name: &str, title: &str, x: &str, y: &str, series: &[Series]) {
    for s in series {
        println!("\n{s}");
    }
    let table = Series::to_table(series, title, x, y);
    let path = artifact_dir().join(format!("{name}.csv"));
    table.write_csv(&path).expect("can write artifact CSV");
    println!("[artifact] {}", path.display());
}
