//! **Table 0** — validation of the synthetic benchmark suites against the
//! architectural assumptions the paper's Section 5 relies on:
//!
//! 1. local L1 miss rates are low and vary little from 4 K to 64 K;
//! 2. local L2 miss rates fall with size and saturate (diminishing
//!    returns).
//!
//! This is the substitution-audit artefact for the traces we could not
//! redistribute (see `DESIGN.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use nm_archsim::workload::SuiteKind;
use nm_archsim::MissRateTable;
use nm_bench::emit_table;
use nm_cache_core::report::cell;
use nm_cache_core::Table;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let l1_sizes = [4 * 1024u64, 16 * 1024, 64 * 1024];
    let l2_sizes = [256 * 1024u64, 1024 * 1024, 4 * 1024 * 1024];

    let mut l1_table = Table::new(
        "Workload validation: L1 miss rate vs L1 size (L2 = 1 MB)",
        &["suite", "4K", "16K", "64K"],
    );
    let mut l2_table = Table::new(
        "Workload validation: local L2 miss rate vs L2 size (L1 = 16 KB)",
        &["suite", "256K", "1M", "4M"],
    );
    for suite in [SuiteKind::Spec2000, SuiteKind::TpcC, SuiteKind::SpecWeb] {
        let t = MissRateTable::build(&l1_sizes, &l2_sizes, &[suite], 2005, 300_000, 600_000);
        let mut l1_row = vec![suite.name().to_owned()];
        for &l1 in &l1_sizes {
            l1_row.push(cell(
                t.get(l1, 1024 * 1024).expect("simulated").l1_miss_rate,
                4,
            ));
        }
        l1_table.push_row(l1_row);
        let mut l2_row = vec![suite.name().to_owned()];
        for &l2 in &l2_sizes {
            l2_row.push(cell(
                t.get(16 * 1024, l2).expect("simulated").l2_local_miss_rate,
                4,
            ));
        }
        l2_table.push_row(l2_row);
    }
    emit_table("table0_workload_l1", &l1_table);
    emit_table("table0_workload_l2", &l2_table);

    c.bench_function("table0/one_pair_one_suite", |b| {
        b.iter(|| {
            black_box(MissRateTable::build(
                &[16 * 1024],
                &[256 * 1024],
                &[SuiteKind::Spec2000],
                2005,
                20_000,
                40_000,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
