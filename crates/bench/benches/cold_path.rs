//! Cold-path probe: how fast the E3 L2-size sweep runs on a *fresh*
//! evaluator, where every component surface must be built and every
//! system front merged from scratch.
//!
//! `BENCH_eval.json` tracks the memoized steady state; this bench tracks
//! the other regime — the first sweep of a session — which the SoA
//! surface layout, the shared hoisted-primitives table and the heap-based
//! Pareto merge are meant to accelerate. The artifact lands in
//! `BENCH_cold.json` at the workspace root, rendered through the
//! `nm_telemetry` report writer so it carries the run-report schema, and
//! includes a speedup gauge against the `cold_sweep_ms` baseline recorded
//! in `BENCH_eval.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_cache_core::amat::{memory_floor, MainMemory};
use nm_cache_core::eval::{Evaluator, HierarchySpec};
use nm_cache_core::groups::{cache_groups, knobs_from_choice, CostKind, Scheme};
use nm_cache_core::twolevel::{TwoLevelStudy, BLOCK_BYTES, L1_WAYS, L2_WAYS};
use nm_device::units::Seconds;
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::constraint::best_under_deadline;
use nm_opt::merge::{system_front, system_front_with_base, MergeBase};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const SCHEME: Scheme = Scheme::Uniform;
const L1_BYTES: u64 = 16 * 1024;
const SLACK: f64 = 0.10;
const COLD_RUNS: u32 = 10;
const MERGE_RUNS: u32 = 200;

fn circuit(bytes: u64, ways: u64, tech: &TechnologyNode) -> CacheCircuit {
    CacheCircuit::new(
        CacheConfig::new(bytes, BLOCK_BYTES, ways).expect("standard geometry"),
        tech,
    )
}

/// A numeric value committed in `BENCH_eval.json`, read with a plain
/// string scan so both the flat legacy layout and the run-report gauge
/// layout parse. `None` when the artifact is absent or unreadable.
fn baseline_ms(key: &str) -> Option<f64> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_eval.json");
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find(key)?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The seed's E3 inner loop, kept verbatim from `eval_engine.rs`: no
/// caching anywhere, every size rebuilds every candidate group from raw
/// scalar `analyze_component` calls. Timed in the same run as the cold
/// engine sweep so the two regimes are compared on identical hardware
/// state (the committed baselines predate this machine slowing ~2x).
fn direct_sweep(
    study: &TwoLevelStudy,
    tech: &TechnologyNode,
    l2_sizes: &[u64],
    target: Seconds,
) -> usize {
    let l1 = circuit(L1_BYTES, L1_WAYS, tech);
    let t_l1 = l1.analyze(&ComponentKnobs::default()).access_time();
    let memory = MainMemory::default();
    let mut feasible = 0;
    for &l2_bytes in l2_sizes {
        let stats = study.stats(L1_BYTES, l2_bytes).expect("sizes simulated");
        let l2 = circuit(l2_bytes, L2_WAYS, tech);
        let base = t_l1
            + memory_floor(
                stats.l1_miss_rate,
                stats.l2_local_miss_rate,
                memory.access_time,
            );
        let budget = target.0 - base.0;
        if budget <= 0.0 {
            continue;
        }
        let groups = cache_groups(
            &l2,
            SCHEME,
            study.grid(),
            stats.l1_miss_rate,
            CostKind::LeakagePower,
        );
        let front = system_front(&groups);
        if let Some(point) = best_under_deadline(&front, budget) {
            black_box(knobs_from_choice(SCHEME, &point.choice));
            feasible += 1;
        }
    }
    feasible
}

fn bench(c: &mut Criterion) {
    let tech = TechnologyNode::bptm65();
    let l2_sizes = TwoLevelStudy::standard_l2_sizes();
    // Miss rates and the AMAT target are inputs to the sweep, not part of
    // the cold path being measured; compute them once up front.
    let warm = TwoLevelStudy::standard(true);
    let target = warm
        .amat_target(L1_BYTES, &l2_sizes, SLACK)
        .expect("sizes simulated");
    let missrates = warm.missrates().clone();

    // Cold sweep: a fresh study per run, so every run rebuilds all of the
    // component surfaces and re-merges every front. Only the sweep itself
    // is timed.
    let mut total_ms = 0.0;
    let mut analyzed_points = 0usize;
    for _ in 0..COLD_RUNS {
        let study = TwoLevelStudy::new(
            missrates.clone(),
            tech.clone(),
            KnobGrid::paper(),
            MainMemory::default(),
        );
        let t0 = Instant::now();
        black_box(
            study
                .l2_size_sweep(L1_BYTES, &l2_sizes, SCHEME, target)
                .expect("sizes simulated"),
        );
        total_ms += t0.elapsed().as_secs_f64() * 1e3;
        let stats = study.evaluator().stats();
        analyzed_points = stats.surfaces_built * study.grid().points().count();
    }
    let cold_ms = total_ms / f64::from(COLD_RUNS);
    let cold_ns_per_point = cold_ms * 1e6 / analyzed_points.max(1) as f64;

    // Same-run seed-style direct cold sweep: the apples-to-apples
    // "before" for the cold path, measured on today's hardware state.
    let t0 = Instant::now();
    for _ in 0..COLD_RUNS {
        black_box(direct_sweep(&warm, &tech, &l2_sizes, target));
    }
    let direct_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(COLD_RUNS);

    // Merge kernel: a representative two-level system front, timed alone.
    let eval = Evaluator::new(KnobGrid::paper());
    let spec = HierarchySpec::new()
        .level(
            "L1",
            circuit(L1_BYTES, L1_WAYS, &tech),
            SCHEME,
            1.0,
            CostKind::LeakagePower,
        )
        .level(
            "L2",
            circuit(1024 * 1024, L2_WAYS, &tech),
            SCHEME,
            0.05,
            CostKind::LeakagePower,
        );
    let groups = eval.groups(&spec);
    let front = system_front(&groups);
    let t0 = Instant::now();
    for _ in 0..MERGE_RUNS {
        black_box(system_front(black_box(&groups)));
    }
    let merge_ns = t0.elapsed().as_secs_f64() * 1e9 / f64::from(MERGE_RUNS);
    let merge_ns_per_front_point = merge_ns / front.len().max(1) as f64;

    // Incremental re-merge with the whole prefix cached (the memoized
    // re-query shape): only the last layer re-merges.
    let base = MergeBase::try_new(&groups).expect("non-empty system");
    let t0 = Instant::now();
    for _ in 0..MERGE_RUNS {
        black_box(system_front_with_base(black_box(&groups), &base));
    }
    let incr_ns = t0.elapsed().as_secs_f64() * 1e9 / f64::from(MERGE_RUNS);
    let incr_ns_per_front_point = incr_ns / front.len().max(1) as f64;

    // One instrumented (untimed) cold sweep so the artifact's counters
    // show the new telemetry — `surface.soa.points` per installed
    // surface, `front.merge.incremental` on base reuse.
    nm_telemetry::reset();
    nm_telemetry::enable();
    let study = TwoLevelStudy::new(
        missrates.clone(),
        tech.clone(),
        KnobGrid::paper(),
        MainMemory::default(),
    );
    study
        .l2_size_sweep(L1_BYTES, &l2_sizes, SCHEME, target)
        .expect("sizes simulated");
    nm_telemetry::set_note(
        "experiment",
        &format!(
            "cold E3 L2-size sweep ({} sizes, {} grid points, {})",
            l2_sizes.len(),
            KnobGrid::paper().points().count(),
            SCHEME
        ),
    );
    nm_telemetry::set_gauge("bench.cold_runs", f64::from(COLD_RUNS));
    nm_telemetry::set_gauge("bench.cold_sweep_ms", cold_ms);
    nm_telemetry::set_gauge("bench.cold_ns_per_grid_point", cold_ns_per_point);
    nm_telemetry::set_gauge("bench.merge_ns_per_front_point", merge_ns_per_front_point);
    nm_telemetry::set_gauge(
        "bench.incremental_merge_ns_per_front_point",
        incr_ns_per_front_point,
    );
    nm_telemetry::set_gauge("bench.direct_cold_sweep_ms", direct_ms);
    nm_telemetry::set_gauge("bench.cold_speedup_vs_direct", direct_ms / cold_ms);
    if let Some(baseline) = baseline_ms("cold_sweep_ms") {
        nm_telemetry::set_gauge("bench.baseline_cold_sweep_ms", baseline);
        nm_telemetry::set_gauge("bench.cold_speedup", baseline / cold_ms);
        // The committed baselines were recorded on a faster machine
        // state; scale by how much the *unchanged* seed pipeline drifted
        // (same code, same inputs) so the speedup can be compared to the
        // committed number apples-to-apples.
        if let Some(direct_then) = baseline_ms("before_direct_ms") {
            let machine_scale = direct_ms / direct_then;
            nm_telemetry::set_gauge("bench.machine_scale", machine_scale);
            nm_telemetry::set_gauge(
                "bench.cold_speedup_machine_normalized",
                baseline / cold_ms * machine_scale,
            );
        }
    }
    let report = nm_telemetry::RunReport::from_snapshot(nm_telemetry::drain());
    nm_telemetry::disable();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cold.json");
    report.write(&path).expect("can write BENCH_cold.json");
    println!("\n{}", report.to_json());
    println!("[artifact] {}", path.display());

    c.bench_function("cold/merge_full", |b| {
        b.iter(|| black_box(system_front(black_box(&groups))))
    });
    c.bench_function("cold/merge_incremental", |b| {
        b.iter(|| black_box(system_front_with_base(black_box(&groups), &base)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
