//! **E5 / Table 5** — L1 size sweep with the L2 fixed at 1 MB (Section 5,
//! third experiment): joint L1+L2 knob optimisation per L1 size under one
//! iso-AMAT constraint.
//!
//! Paper shape to reproduce: local L1 miss rates barely move from 4 K to
//! 64 K, so a small L1 — less leakage, faster — minimises total leakage.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::twolevel::TwoLevelStudy;
use nm_device::units::Seconds;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = TwoLevelStudy::standard(false);
    let l1_sizes = TwoLevelStudy::standard_l1_sizes();
    let l2 = 1024 * 1024;

    // Target: slack over the best min-AMAT across L1 sizes.
    let mut best = f64::INFINITY;
    for &l1 in &l1_sizes {
        best = best.min(study.min_amat_l1_fixed(l1, l2).expect("simulated").0);
    }
    let target = Seconds(best * 1.10);

    let sweep = study
        .l1_size_sweep(&l1_sizes, l2, target)
        .expect("sizes simulated");
    emit_table("table5_l1_size", &sweep.to_table());
    if let Some(w) = sweep.winner() {
        println!(
            "[winner] L1 = {} KB at {:.3} mW total",
            w.size_bytes / 1024,
            w.total_leakage.expect("winner is feasible").milli()
        );
    }

    c.bench_function("table5/l1_size_sweep", |b| {
        b.iter(|| {
            black_box(
                study
                    .l1_size_sweep(&l1_sizes, l2, target)
                    .expect("sizes simulated"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
