//! Micro-benchmarks of the computational kernels (no paper artefact —
//! these document the library's performance envelope).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nm_archsim::cache::{CacheParams, CacheSim, Replacement};
use nm_archsim::workload::{SpecLoops, Workload};
use nm_archsim::Access;
use nm_cache_core::groups::{cache_groups, CostKind, Scheme};
use nm_cache_core::single::SingleCacheStudy;
use nm_device::{KnobGrid, KnobPoint, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::merge::system_front;
use std::hint::black_box;

fn device_kernels(c: &mut Criterion) {
    let tech = TechnologyNode::bptm65();
    let circuit = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).expect("valid"), &tech);
    let knobs = ComponentKnobs::uniform(KnobPoint::nominal());

    c.bench_function("micro/cache_analyze_16kb", |b| {
        b.iter(|| black_box(circuit.analyze(black_box(&knobs))))
    });
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/simulator");
    let n: u64 = 100_000;
    group.throughput(Throughput::Elements(n));
    for (name, ways) in [("direct-mapped", 1u64), ("4-way", 4), ("16-way", 16)] {
        group.bench_with_input(BenchmarkId::new("lru_accesses", name), &ways, |b, &ways| {
            b.iter(|| {
                let mut sim = CacheSim::new(
                    CacheParams::new(32 * 1024, 64, ways).expect("valid"),
                    Replacement::Lru,
                );
                let mut w = SpecLoops::default_suite(1);
                for _ in 0..n {
                    sim.access(w.next_access());
                }
                black_box(sim.stats())
            })
        });
    }
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/workloads");
    let n: u64 = 100_000;
    group.throughput(Throughput::Elements(n));
    group.bench_function("spec2000_like", |b| {
        b.iter(|| {
            let mut w = SpecLoops::default_suite(1);
            let mut acc = 0u64;
            for _ in 0..n {
                acc ^= w.next_access().addr;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn solver_kernels(c: &mut Criterion) {
    let study = SingleCacheStudy::paper_16kb().expect("valid");
    let groups = cache_groups(
        study.circuit(),
        Scheme::PerComponent,
        study.grid(),
        1.0,
        CostKind::LeakagePower,
    );
    c.bench_function("micro/merge_4_groups_279_candidates", |b| {
        b.iter(|| black_box(system_front(black_box(&groups))))
    });

    let grid = KnobGrid::paper();
    c.bench_function("micro/group_build_one_component", |b| {
        b.iter(|| {
            black_box(nm_cache_core::groups::component_group(
                study.circuit(),
                nm_geometry::ComponentId::MemoryArray,
                &grid,
                1.0,
                CostKind::LeakagePower,
            ))
        })
    });

    c.bench_function("micro/sim_access_single", |b| {
        let mut sim = CacheSim::new(
            CacheParams::new(32 * 1024, 64, 4).expect("valid"),
            Replacement::Lru,
        );
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            black_box(sim.access(Access::read(i % (1 << 22))))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = device_kernels, simulator_throughput, workload_generation, solver_kernels
}
criterion_main!(benches);
