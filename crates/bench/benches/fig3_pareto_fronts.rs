//! **Figure 3 (ours)** — full leakage-delay Pareto fronts of the three
//! assignment schemes on the 16 KB cache: the continuous version of the
//! paper's Section 4 comparison (its text reports spot checks; the fronts
//! show the whole trade-off curve each scheme makes available).
//!
//! Expected shape: the Scheme I and Scheme II fronts hug each other and
//! sit strictly below/left of Scheme III everywhere except the extreme
//! corners (where all schemes collapse to the same uniform assignment).

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_series;
use nm_cache_core::groups::{cache_groups, CostKind, Scheme};
use nm_cache_core::report::Series;
use nm_cache_core::single::SingleCacheStudy;
use nm_opt::merge::system_front;
use std::hint::black_box;

fn fronts(study: &SingleCacheStudy) -> Vec<Series> {
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let groups = cache_groups(
                study.circuit(),
                scheme,
                study.grid(),
                1.0,
                CostKind::LeakagePower,
            );
            let front = system_front(&groups);
            let mut s = Series::new(format!("scheme {}", scheme.numeral()));
            s.points = front
                .iter()
                .map(|p| (p.delay * 1e12, p.cost * 1e3))
                .collect();
            s
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let study = SingleCacheStudy::paper_16kb().expect("paper configuration is valid");
    let series = fronts(&study);
    for s in &series {
        println!("[front] {}: {} points", s.label, s.points.len());
    }
    emit_series(
        "fig3_pareto_fronts",
        "Pareto fronts of schemes I/II/III (16KB)",
        "access time (ps)",
        "leakage (mW)",
        &series,
    );

    c.bench_function("fig3/three_scheme_fronts_16kb", |b| {
        b.iter(|| black_box(fronts(&study)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
