//! **E2 / Table 2** — minimum leakage of the three `Vth`/`Tox` assignment
//! schemes of Section 4 across a sweep of delay constraints (16 KB cache).
//!
//! Paper shape to reproduce: Scheme III (one pair for everything) is the
//! worst, Scheme I (per-component pairs) the best, and Scheme II (cells vs
//! periphery) lands within a few percent of Scheme I.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::groups::Scheme;
use nm_cache_core::single::SingleCacheStudy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = SingleCacheStudy::paper_16kb().expect("paper configuration is valid");
    let deadlines: Vec<_> = study.delay_sweep(9).into_iter().skip(1).collect();
    let table = study.scheme_comparison(&deadlines);
    emit_table("table2_schemes", &table);

    let mid = deadlines[deadlines.len() / 2];
    c.bench_function("table2/optimize_scheme2_16kb", |b| {
        b.iter(|| black_box(study.optimize(Scheme::Split, mid)))
    });
    c.bench_function("table2/optimize_scheme1_16kb", |b| {
        b.iter(|| black_box(study.optimize(Scheme::PerComponent, mid)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
