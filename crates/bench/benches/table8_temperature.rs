//! **X2 / Table 8** — extension: temperature sensitivity of the Scheme II
//! optimum (25 / 80 / 110 °C).
//!
//! Expected shape: leakage grows steeply with temperature; re-optimising
//! at each temperature recovers part of the cost; the gate-tunnelling
//! fraction of the optimum rises as the die cools (subthreshold collapses,
//! the Tox-set gate floor remains).

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::thermal::ThermalStudy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = ThermalStudy::paper_16kb().expect("paper configuration is valid");
    for slack in [0.15, 0.40] {
        emit_table(
            &format!("table8_temperature_slack{:02.0}", slack * 100.0),
            &study.to_table(slack),
        );
    }

    c.bench_function("table8/thermal_three_points", |b| {
        b.iter(|| black_box(study.evaluate(0.25)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
