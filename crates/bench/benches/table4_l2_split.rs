//! **E4 / Table 4** — L2 size sweep with split cell-array/periphery pairs
//! (Section 5, second experiment), side by side with the single-pair
//! result.
//!
//! Paper shape to reproduce: with per-cell/periphery pairs, speeding the
//! periphery beats buying miss rate with capacity, so the leakage optimum
//! moves to a *smaller* L2 than under the single-pair assignment, and the
//! cell array always ends up far more conservative than the periphery.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::groups::Scheme;
use nm_cache_core::report::cell;
use nm_cache_core::twolevel::TwoLevelStudy;
use nm_cache_core::Table;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = TwoLevelStudy::standard(false);
    let l1 = 16 * 1024;
    let l2_sizes = TwoLevelStudy::standard_l2_sizes();
    // Enough slack that the smaller L2 sizes are feasible at all (their
    // higher miss rates raise the knob-independent memory floor).
    let target = study
        .amat_target(l1, &l2_sizes, 0.15)
        .expect("sizes simulated");

    let uniform = study
        .l2_size_sweep(l1, &l2_sizes, Scheme::Uniform, target)
        .expect("sizes simulated");
    let split = study
        .l2_size_sweep(l1, &l2_sizes, Scheme::Split, target)
        .expect("sizes simulated");

    let mut table = Table::new(
        format!(
            "L2 single pair vs split pairs, AMAT ≤ {:.0} ps",
            target.picos()
        ),
        &[
            "L2 (KB)",
            "uniform leak (mW)",
            "split leak (mW)",
            "split cells",
            "split periphery",
        ],
    );
    for (u, s) in uniform.rows.iter().zip(&split.rows) {
        let knobs = s.knobs.as_ref();
        table.push_row(vec![
            cell(u.size_bytes as f64 / 1024.0, 0),
            u.opt_leakage
                .map_or_else(|| "-".into(), |w| cell(w.milli(), 3)),
            s.opt_leakage
                .map_or_else(|| "-".into(), |w| cell(w.milli(), 3)),
            knobs.map_or_else(
                || "-".into(),
                |k| k[nm_geometry::ComponentId::MemoryArray].to_string(),
            ),
            knobs.map_or_else(
                || "-".into(),
                |k| k[nm_geometry::ComponentId::Decoder].to_string(),
            ),
        ]);
    }
    emit_table("table4_l2_split", &table);
    if let (Some(wu), Some(ws)) = (uniform.winner(), split.winner()) {
        println!(
            "[winner] uniform: {} KB, split: {} KB",
            wu.size_bytes / 1024,
            ws.size_bytes / 1024
        );
    }

    c.bench_function("table4/l2_size_sweep_split", |b| {
        b.iter(|| {
            black_box(
                study
                    .l2_size_sweep(l1, &l2_sizes, Scheme::Split, target)
                    .expect("sizes simulated"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
