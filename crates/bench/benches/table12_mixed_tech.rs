//! **E8 / Table 12** — extension: a three-level hierarchy whose L3 cell
//! technology varies over SRAM, eDRAM and STT-MRAM, every candidate
//! re-optimised under one shared iso-AMAT target.
//!
//! Expected shape: the low-leakage technologies (eDRAM, and especially
//! STT-MRAM) win on total leakage despite their slower arrays, because
//! the slack the shared target grants lets *every* level's knobs relax —
//! and an SRAM L3 must burn that slack fighting its own cell leakage.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::mixedtech::MixedTechStudy;
use nm_device::TechProfile;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = MixedTechStudy::standard(false).expect("standard study builds");
    let candidates = [
        TechProfile::sram(),
        TechProfile::edram(),
        TechProfile::stt_mram(),
    ];
    let outcome = study
        .compare(&candidates, 0.15)
        .expect("candidates evaluable");
    emit_table("table12_mixed_tech", &outcome.to_table());
    let [m1, m2, m3] = study.miss_rates();
    println!("[rates] m1={m1:.4}, m2={m2:.4}, m3={m3:.4}");
    if let Some(w) = outcome.winner() {
        println!("[winner] {}", w.tech);
    }

    c.bench_function("table12/compare_three_technologies", |b| {
        b.iter(|| black_box(study.compare(&candidates, 0.15)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
