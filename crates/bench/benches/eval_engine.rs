//! Evaluation-engine probe: before/after wall time of the E3 L2-size
//! sweep, pre-refactor direct pipeline vs the memoizing `Evaluator`.
//!
//! "Before" re-runs the seed's inner loop verbatim — rebuild
//! `cache_groups` (a full grid of `analyze_component` calls per
//! component), merge the system front, read the constrained optimum —
//! once per sweep, every sweep. "After" is `TwoLevelStudy::l2_size_sweep`
//! on its warmed evaluator, which serves every candidate from the
//! memoized component surfaces. The measured pair lands in
//! `BENCH_eval.json` at the workspace root — rendered through the
//! `nm_telemetry` report writer, so the artifact shares the run-report
//! schema — and the perf trajectory has a data point.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_cache_core::amat::{memory_floor, MainMemory};
use nm_cache_core::groups::{cache_groups, knobs_from_choice, CostKind, Scheme};
use nm_cache_core::twolevel::{TwoLevelStudy, BLOCK_BYTES, L1_WAYS, L2_WAYS};
use nm_device::units::Seconds;
use nm_device::TechnologyNode;
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nm_opt::constraint::best_under_deadline;
use nm_opt::merge::system_front;
use nm_telemetry::Stopwatch;
use std::hint::black_box;
use std::path::PathBuf;

const SCHEME: Scheme = Scheme::Uniform;
const L1_BYTES: u64 = 16 * 1024;
const SLACK: f64 = 0.10;
const ITERATIONS: u32 = 10;

fn circuit(bytes: u64, ways: u64, tech: &TechnologyNode) -> CacheCircuit {
    CacheCircuit::new(
        CacheConfig::new(bytes, BLOCK_BYTES, ways).expect("standard geometry"),
        tech,
    )
}

/// The seed's E3 inner loop: no caching anywhere, every sweep rebuilds
/// every candidate group from raw `analyze_component` calls.
fn direct_sweep(
    study: &TwoLevelStudy,
    tech: &TechnologyNode,
    l2_sizes: &[u64],
    target: Seconds,
) -> usize {
    let l1 = circuit(L1_BYTES, L1_WAYS, tech);
    let t_l1 = l1.analyze(&ComponentKnobs::default()).access_time();
    // `TwoLevelStudy::standard` wires in the default main memory.
    let memory = MainMemory::default();
    let mut feasible = 0;
    for &l2_bytes in l2_sizes {
        let stats = study.stats(L1_BYTES, l2_bytes).expect("sizes simulated");
        let l2 = circuit(l2_bytes, L2_WAYS, tech);
        let base = t_l1
            + memory_floor(
                stats.l1_miss_rate,
                stats.l2_local_miss_rate,
                memory.access_time,
            );
        let budget = target.0 - base.0;
        if budget <= 0.0 {
            continue;
        }
        let groups = cache_groups(
            &l2,
            SCHEME,
            study.grid(),
            stats.l1_miss_rate,
            CostKind::LeakagePower,
        );
        let front = system_front(&groups);
        if let Some(point) = best_under_deadline(&front, budget) {
            black_box(knobs_from_choice(SCHEME, &point.choice));
            feasible += 1;
        }
    }
    feasible
}

/// Per-iteration wall seconds of `iterations` runs of `f`, timed with
/// the telemetry stopwatch. The registry is disabled while measuring;
/// the caller replays these into a histogram afterwards, so the report
/// gets a real latency distribution, not just the mean.
fn iteration_seconds(iterations: u32, mut f: impl FnMut()) -> Vec<f64> {
    (0..iterations)
        .map(|_| {
            let clock = Stopwatch::start();
            f();
            clock.elapsed_seconds()
        })
        .collect()
}

/// Mean of `seconds`, in milliseconds.
fn mean_ms(seconds: &[f64]) -> f64 {
    seconds.iter().sum::<f64>() * 1e3 / seconds.len().max(1) as f64
}

fn bench(c: &mut Criterion) {
    let study = TwoLevelStudy::standard(true);
    let tech = TechnologyNode::bptm65();
    let l2_sizes = TwoLevelStudy::standard_l2_sizes();
    let target = study
        .amat_target(L1_BYTES, &l2_sizes, SLACK)
        .expect("sizes simulated");

    // Cold: the first sweep pays for building the component surfaces.
    let cold_clock = Stopwatch::start();
    let sweep = study
        .l2_size_sweep(L1_BYTES, &l2_sizes, SCHEME, target)
        .expect("sizes simulated");
    let cold_ms = cold_clock.elapsed_seconds() * 1e3;
    black_box(&sweep);

    let before_seconds = iteration_seconds(ITERATIONS, || {
        black_box(direct_sweep(&study, &tech, &l2_sizes, target));
    });
    let after_seconds = iteration_seconds(ITERATIONS, || {
        black_box(
            study
                .l2_size_sweep(L1_BYTES, &l2_sizes, SCHEME, target)
                .expect("sizes simulated"),
        );
    });
    let before_ms = mean_ms(&before_seconds);
    let after_ms = mean_ms(&after_seconds);
    let speedup = before_ms / after_ms;

    // Render the artifact through the shared telemetry report writer so
    // it carries the same schema (and key ordering) as `--metrics` runs.
    // The bench measures its own wall times above, so the registry only
    // holds what we stage into it here.
    nm_telemetry::reset();
    nm_telemetry::enable();
    nm_telemetry::set_note(
        "experiment",
        &format!(
            "E3 L2-size sweep ({} sizes, {} grid points, {})",
            l2_sizes.len(),
            study.grid().points().count(),
            SCHEME
        ),
    );
    nm_telemetry::set_gauge("bench.iterations", f64::from(ITERATIONS));
    nm_telemetry::set_gauge("bench.cold_sweep_ms", cold_ms);
    nm_telemetry::set_gauge("bench.before_direct_ms", before_ms);
    nm_telemetry::set_gauge("bench.after_memoized_ms", after_ms);
    nm_telemetry::set_gauge("bench.speedup", speedup);
    // Replay the raw per-iteration samples as histograms so the report
    // carries p50/p95/p99 alongside the legacy mean gauges.
    for &s in &before_seconds {
        nm_telemetry::observe_seconds("bench.direct_sweep_seconds", s);
    }
    for &s in &after_seconds {
        nm_telemetry::observe_seconds("bench.memoized_sweep_seconds", s);
    }
    let report = nm_telemetry::RunReport::from_snapshot(nm_telemetry::drain());
    nm_telemetry::disable();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_eval.json");
    report.write(&path).expect("can write BENCH_eval.json");
    println!("\n{}", report.to_json());
    println!("[artifact] {}", path.display());

    c.bench_function("eval/e3_l2_sweep_memoized", |b| {
        b.iter(|| {
            black_box(
                study
                    .l2_size_sweep(L1_BYTES, &l2_sizes, SCHEME, target)
                    .expect("sizes simulated"),
            )
        })
    });
    c.bench_function("eval/e3_l2_sweep_direct", |b| {
        b.iter(|| black_box(direct_sweep(&study, &tech, &l2_sizes, target)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
