//! **X4 / Table 10** — extension: split I$/D$ versus unified L1 at iso
//! mean access time, both backed by the same unified L2.
//!
//! Expected shape: the split organisation's extra knob freedom (separate
//! cell-array pairs for the read-only instruction stream and the
//! write-carrying data stream) keeps it at or below the unified L1's
//! leakage at every slack level.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_archsim::workload::SuiteKind;
use nm_bench::emit_table;
use nm_cache_core::splitl1::SplitL1Study;
use nm_device::KnobGrid;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = SplitL1Study::new(
        16 * 1024,
        16 * 1024,
        1024 * 1024,
        SuiteKind::Spec2000,
        600_000,
        KnobGrid::paper(),
    )
    .expect("valid configuration");
    emit_table("table10_split_l1", &study.to_table(&[0.08, 0.15, 0.30]));
    let s = study.split_stats();
    println!(
        "[rates] I$ m={:.4}, D$ m={:.4}, unified m1={:.4}",
        s.icache_miss_rate(),
        s.dcache_miss_rate(),
        study.unified_rates().0
    );

    let deadline = study.deadline(0.15);
    c.bench_function("table10/optimize_split_system", |b| {
        b.iter(|| black_box(study.optimize_split(deadline)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
