//! **X3 / Table 9** — extension: process knobs versus cache decay
//! (gated-Vdd), the architectural leakage baseline the paper cites as
//! prior work ([2], [5], [6]).
//!
//! Expected shape: decay helps over a do-nothing performance process, but
//! at 65 nm with gate leakage in play the paper's knob assignment buys far
//! more at iso-delay, and composing both wins slightly over knobs alone.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_archsim::workload::SuiteKind;
use nm_bench::emit_table;
use nm_cache_core::decay::DecayStudy;
use nm_cache_core::single::SingleCacheStudy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let single = SingleCacheStudy::paper_16kb().expect("paper configuration is valid");
    let study = DecayStudy::new(single, SuiteKind::Spec2000, 400_000);
    let deadlines = study.study().delay_sweep(5);
    for (label, deadline) in [("tight", deadlines[1]), ("mid", deadlines[2])] {
        emit_table(&format!("table9_decay_{label}"), &study.to_table(deadline));
    }

    c.bench_function("table9/decay_interval_sim_100k", |b| {
        let short = DecayStudy::new(
            SingleCacheStudy::paper_16kb().expect("valid"),
            SuiteKind::Spec2000,
            100_000,
        );
        b.iter(|| black_box(short.simulate_interval(4096)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
