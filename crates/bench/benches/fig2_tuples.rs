//! **E6 / Figure 2** — the (`Tox`, `Vth`) tuple problem: total memory
//! system energy (pJ) versus AMAT (ps) for the five tuple restrictions of
//! the paper's legend, on a 16 KB L1 + 1 MB L2 + DRAM system.
//!
//! Paper shape to reproduce: 2 Tox + 3 Vth is best but 2 Tox + 2 Vth is
//! within a hair of it (dual/dual suffices), and 1 Tox + 2 Vth beats
//! 2 Tox + 1 Vth (`Vth` is the more effective knob).

use criterion::{criterion_group, criterion_main, Criterion};
use nm_archsim::MissRateTable;
use nm_bench::emit_series;
use nm_cache_core::amat::MainMemory;
use nm_cache_core::memsys::{MemorySystemStudy, TupleCounts};
use nm_cache_core::twolevel::{TwoLevelStudy, STANDARD_SUITES};
use nm_device::{KnobGrid, TechnologyNode};
use std::hint::black_box;

fn build_study() -> MemorySystemStudy {
    let l1 = 16 * 1024;
    let l2 = 1024 * 1024;
    let missrates = MissRateTable::build(&[l1], &[l2], &STANDARD_SUITES, 2005, 300_000, 600_000);
    let stats = *missrates.get(l1, l2).expect("pair simulated");
    MemorySystemStudy::new(
        l1,
        l2,
        stats,
        &TechnologyNode::bptm65(),
        KnobGrid::coarse(),
        MainMemory::default(),
    )
    .expect("valid configuration")
}

fn bench(c: &mut Criterion) {
    // Keep the archsim dependency alive for the doc link above.
    let _ = TwoLevelStudy::standard_l1_sizes();

    let study = build_study();
    let targets = study.amat_sweep(9);
    let series = study.tuple_curves(&TupleCounts::FIGURE2, &targets);
    emit_series(
        "fig2_tuples",
        "Figure 2: (Tox, Vth) tuple problem",
        "AMAT (ps)",
        "total energy (pJ)",
        &series,
    );

    let two_targets = vec![targets[2], targets[5]];
    c.bench_function("fig2/tuple_2tox_2vth_two_targets", |b| {
        b.iter(|| {
            black_box(study.tuple_curves(&[TupleCounts { n_tox: 2, n_vth: 2 }], &two_targets))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
