//! **E1 / Figure 1** — "Fixed Vth vs Fixed Tox": leakage power (mW) versus
//! access time (ps) for a 16 KB cache, holding one knob fixed and sweeping
//! the other.
//!
//! Paper shape to reproduce: leakage is more sensitive to `Tox` than
//! `Vth` (the `Tox = 10 Å` curve floors far above `Tox = 14 Å`), while the
//! delay range is wider when `Tox` is fixed and `Vth` sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_series;
use nm_cache_core::single::SingleCacheStudy;
use std::hint::black_box;

fn generate() -> Vec<nm_cache_core::report::Series> {
    let study = SingleCacheStudy::paper_16kb().expect("paper configuration is valid");
    study.fixed_knob_curves().expect("legal fixed knobs")
}

fn bench(c: &mut Criterion) {
    let series = generate();
    emit_series(
        "fig1_fixed_knobs",
        "Figure 1: fixed Vth vs fixed Tox (16KB)",
        "access time (ps)",
        "leakage (mW)",
        &series,
    );

    c.bench_function("fig1/fixed_knob_curves_16kb", |b| {
        b.iter(|| black_box(generate()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
