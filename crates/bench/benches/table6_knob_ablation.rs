//! **E7 / Table 6** — single-knob ablation (Section 4's sensitivity
//! analysis): optimise a 16 KB cache with only one knob free.
//!
//! Paper shape to reproduce: "to achieve minimum overall leakage, it is
//! best to set Tox conservatively at a high value and let Vth be the knob
//! designers can vary to meet a delay constraint" — the Vth-only column at
//! Tox = 14 Å tracks the both-knobs optimum, while the Tox-only column is
//! far worse.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::single::SingleCacheStudy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = SingleCacheStudy::paper_16kb().expect("paper configuration is valid");
    let deadlines: Vec<_> = study.delay_sweep(9).into_iter().skip(2).collect();
    let table = study.knob_ablation(&deadlines);
    emit_table("table6_knob_ablation", &table);

    let subset = &deadlines[2..4];
    c.bench_function("table6/knob_ablation_two_deadlines", |b| {
        b.iter(|| black_box(study.knob_ablation(subset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
