//! **E3 / Table 3** — L2 size sweep with a single `Vth`/`Tox` pair per L2
//! (Section 5, first experiment): L1 fixed at default knobs, iso-AMAT
//! constraint.
//!
//! Paper shape to reproduce: bigger L2s leak less at iso-AMAT than the
//! smallest, but the largest size does not always win — leakage of a very
//! large L2 eventually outweighs its miss-rate benefit.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::groups::Scheme;
use nm_cache_core::twolevel::TwoLevelStudy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let study = TwoLevelStudy::standard(false);
    let l1 = 16 * 1024;
    let l2_sizes = TwoLevelStudy::standard_l2_sizes();

    // Two constraints: tight (6 % slack) and relaxed (15 % slack).
    for (name, slack) in [("tight", 0.06), ("relaxed", 0.15)] {
        let target = study
            .amat_target(l1, &l2_sizes, slack)
            .expect("sizes simulated");
        let sweep = study
            .l2_size_sweep(l1, &l2_sizes, Scheme::Uniform, target)
            .expect("sizes simulated");
        emit_table(&format!("table3_l2_size_{name}"), &sweep.to_table());
        if let Some(w) = sweep.winner() {
            println!(
                "[winner/{name}] {} KB at {:.3} mW total",
                w.size_bytes / 1024,
                w.total_leakage.expect("winner is feasible").milli()
            );
        }
    }

    let target = study
        .amat_target(l1, &l2_sizes, 0.10)
        .expect("sizes simulated");
    c.bench_function("table3/l2_size_sweep_uniform", |b| {
        b.iter(|| {
            black_box(
                study
                    .l2_size_sweep(l1, &l2_sizes, Scheme::Uniform, target)
                    .expect("sizes simulated"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
