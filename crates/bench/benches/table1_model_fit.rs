//! **E0 / Table 1** — fit quality of the paper's Eq. 1 (leakage) and
//! Eq. 2 (delay) closed forms against the circuit model, per component of
//! a 16 KB cache (the paper's Section 3 methodology check).

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::fitcheck::fit_report;
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig};
use std::hint::black_box;

fn circuit() -> CacheCircuit {
    let tech = TechnologyNode::bptm65();
    CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).expect("valid"), &tech)
}

fn bench(c: &mut Criterion) {
    let circ = circuit();
    let grid = KnobGrid::paper();
    let table = fit_report(&circ, &grid).expect("fits converge");
    emit_table("table1_model_fit", &table);

    c.bench_function("table1/fit_all_components_16kb", |b| {
        b.iter(|| black_box(fit_report(&circ, &grid).expect("fits converge")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
