//! **X1 / Table 7** — extension: the Scheme II optimum under die-to-die
//! process variation (σVth = 20 mV, σTox = 0.25 Å).
//!
//! Expected shape: leakage is lognormal in the `Vth` shift, so the mean
//! across dies sits above nominal and the p95/p99 tails well above; the
//! timing yield of an optimum sitting exactly on its delay constraint is
//! near 50 %, motivating guard-banded deadlines.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::variation::paper_16kb_variation;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let vs = paper_16kb_variation(400, 65).expect("paper configuration is valid");
    let deadlines: Vec<_> = vs.study().delay_sweep(7).into_iter().skip(2).collect();
    emit_table("table7_variation", &vs.to_table(&deadlines));

    let one = vec![deadlines[1]];
    c.bench_function("table7/variation_400_samples_one_deadline", |b| {
        b.iter(|| black_box(vs.evaluate(&one)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
