//! **Table 11** — ablation of the calibration choices behind the model
//! (the knobs `DESIGN.md` singles out): the drawn-length scaling
//! coefficient κ, the gate-tunnelling slope `Bg`, and the near-threshold
//! slowdown λ.
//!
//! For each variant we re-derive the two headline sensitivities of
//! Figure 1 — the delay span of the `Vth` knob versus the `Tox` knob —
//! and re-run the single-knob optimisation to see whether "set `Tox`
//! high, tune `Vth`" still wins. The conclusions should be robust to the
//! calibration within reason; the λ = 0 variant shows which ingredient
//! the `Vth` delay sensitivity rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_table;
use nm_cache_core::report::cell;
use nm_cache_core::single::SingleCacheStudy;
use nm_cache_core::Table;
use nm_device::{KnobGrid, TechnologyNode};
use nm_geometry::CacheConfig;
use std::hint::black_box;

fn spans_and_ablation(tech: &TechnologyNode) -> (f64, f64, Option<(f64, f64)>) {
    let config = CacheConfig::new(16 * 1024, 64, 4).expect("valid");
    let study = SingleCacheStudy::new(config, tech, KnobGrid::paper());
    let curves = study.fixed_knob_curves().expect("legal fixed knobs");
    let span = |label: &str| {
        let c = curves
            .iter()
            .find(|c| c.label == label)
            .expect("curve exists");
        let lo = c.points.first().expect("non-empty").0;
        let hi = c.points.last().expect("non-empty").0;
        hi / lo
    };
    let vth_span = span("Tox=10A"); // Vth sweeps along a fixed-Tox curve
    let tox_span = span("Vth=200mV");

    // Single-knob optima at a mid deadline (parse the ablation table).
    let deadline = study.delay_sweep(5)[2];
    let table = study.knob_ablation(&[deadline]);
    let row = table.rows().first().expect("one deadline row");
    let tox_only: Option<f64> = row[1].parse().ok();
    let vth_hi: Option<f64> = row[3].parse().ok();
    let pair = match (vth_hi, tox_only) {
        (Some(v), Some(t)) => Some((v, t)),
        _ => None,
    };
    (vth_span, tox_span, pair)
}

fn bench(c: &mut Criterion) {
    let base = TechnologyNode::bptm65();
    let variants: Vec<(&str, TechnologyNode)> = vec![
        ("default (κ=0.5, Bg=1.2, λ=0.45)", base.clone()),
        ("no length scaling (κ=0)", base.with_length_scaling(0.0)),
        ("full length scaling (κ=1)", base.with_length_scaling(1.0)),
        ("shallow gate slope (Bg=0.6)", base.with_gate_slope(0.6)),
        ("steep gate slope (Bg=2.4)", base.with_gate_slope(2.4)),
        (
            "no near-Vth slowdown (λ=0)",
            base.with_near_vth_slowdown(0.0),
        ),
    ];

    let mut table = Table::new(
        "Calibration ablation: does 'set Tox high, tune Vth' survive?",
        &[
            "variant",
            "Vth delay span",
            "Tox delay span",
            "Vth-only @14A (mW)",
            "Tox-only (mW)",
            "Vth knob wins",
        ],
    );
    for (name, tech) in &variants {
        let (vth_span, tox_span, pair) = spans_and_ablation(tech);
        let (vth_mw, tox_mw, wins) = match pair {
            Some((v, t)) => (cell(v, 3), cell(t, 3), (v <= t * 1.05).to_string()),
            None => ("infeasible".into(), "infeasible".into(), "-".into()),
        };
        table.push_row(vec![
            (*name).to_owned(),
            cell(vth_span, 2),
            cell(tox_span, 2),
            vth_mw,
            tox_mw,
            wins,
        ]);
    }
    emit_table("table11_calibration_ablation", &table);

    c.bench_function("table11/spans_one_variant", |b| {
        b.iter(|| black_box(spans_and_ablation(&base)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
