//! **Figure 4 (ours)** — the paper's motivating claim as a curve: "with
//! aggressive Tox scaling, gate leakage power can potentially surpass the
//! subthreshold leakage at low Tox". We sweep `Tox` at two fixed `Vth`
//! values on the 16 KB cache and plot the subthreshold and gate
//! components separately, exposing the crossover.

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::emit_series;
use nm_cache_core::report::Series;
use nm_device::units::Volts;
use nm_device::{KnobGrid, KnobPoint, TechnologyNode};
use nm_geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use std::hint::black_box;

fn breakdown_series(circuit: &CacheCircuit, vth: f64) -> Vec<Series> {
    let grid = KnobGrid::paper();
    let mut sub = Series::new(format!("subthreshold @ Vth={vth:.1}V"));
    let mut gate = Series::new(format!("gate @ Vth={vth:.1}V"));
    for &tox in grid.tox_values() {
        let p = KnobPoint::new(Volts(vth), tox).expect("grid values are legal");
        let leak = circuit.analyze(&ComponentKnobs::uniform(p)).leakage();
        sub.points.push((tox.0, leak.subthreshold.milli()));
        gate.points.push((tox.0, leak.gate.milli()));
    }
    vec![sub, gate]
}

fn bench(c: &mut Criterion) {
    let tech = TechnologyNode::bptm65();
    let circuit = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).expect("valid"), &tech);

    let mut series = breakdown_series(&circuit, 0.3);
    series.extend(breakdown_series(&circuit, 0.45));
    emit_series(
        "fig4_leakage_breakdown",
        "Leakage mechanism breakdown vs Tox (16KB)",
        "Tox (A)",
        "power (mW)",
        &series,
    );

    // Report the crossover: the Tox below which gate beats subthreshold.
    for vth in [0.3, 0.45] {
        let pair = breakdown_series(&circuit, vth);
        let cross = pair[0]
            .points
            .iter()
            .zip(&pair[1].points)
            .filter(|(s, g)| g.1 > s.1)
            .map(|(s, _)| s.0)
            .fold(f64::NEG_INFINITY, f64::max);
        println!("[crossover] Vth = {vth:.2} V: gate > subthreshold up to Tox = {cross:.1} A");
    }

    c.bench_function("fig4/breakdown_two_vths", |b| {
        b.iter(|| {
            let mut s = breakdown_series(&circuit, 0.3);
            s.extend(breakdown_series(&circuit, 0.45));
            black_box(s)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
