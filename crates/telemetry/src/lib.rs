//! # nm-telemetry — unified observability core for the `nmcache` workspace
//!
//! Before this crate, instrumentation was scattered: the memoizing
//! evaluator kept private `EvalStats` counters, the sweep executor kept
//! its own `SweepStats` registry, and the benches hand-formatted JSON.
//! There was no single place to answer *where did this study spend its
//! time, which surfaces were cache hits, how many retries fired?*
//!
//! This crate is that place: a **zero-external-dependency, thread-safe**
//! global registry of
//!
//! * **spans** — RAII guards ([`span`]) recording wall time on monotonic
//!   clocks, with parent/child nesting tracked per thread and per-label
//!   aggregation in the run report;
//! * **counters** ([`counter_add`]) and **gauges** ([`set_gauge`]) —
//!   memo hits/misses, surfaces built, device evaluations, trace records
//!   parsed, retries, faults, poisoned workers;
//! * **histograms** ([`observe_seconds`]) — per-item sweep latency,
//!   surface build latency, with log₂ buckets for quantile estimates;
//! * **sweep records** ([`record_sweep`]) — the executor's per-sweep
//!   accounting, stored here so `--stats` is a view over the same
//!   registry as everything else.
//!
//! ## Disabled by default, drainable for tests
//!
//! Every entry point first checks one relaxed atomic ([`enabled`]); when
//! telemetry is off the whole crate costs one load per call site and
//! records nothing, so golden outputs stay byte-identical. Tests (and
//! the CLI) use [`enable`] / [`drain`] / [`reset`] with the same
//! semantics as the old `sweep::stats` pattern: draining removes and
//! returns everything recorded so far, isolating one measured region
//! from the next.
//!
//! ## Exportable run reports
//!
//! A [`report::RunReport`] snapshots the registry into a
//! schema-versioned, stable-key-order JSON document (for `--metrics`
//! and golden testing), and [`report::chrome_trace_json`] renders the
//! recorded span tree as a Chrome `chrome://tracing` / Perfetto
//! compatible trace-event file (for `--trace-out`).
//!
//! ```
//! nm_telemetry::reset();
//! nm_telemetry::enable();
//! {
//!     let _outer = nm_telemetry::span("demo.outer");
//!     let _inner = nm_telemetry::span("demo.inner");
//!     nm_telemetry::counter_add("demo.widgets", 3);
//! }
//! let snap = nm_telemetry::drain();
//! nm_telemetry::disable();
//! assert_eq!(snap.counters["demo.widgets"], 3);
//! assert_eq!(snap.spans.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod registry;
pub mod report;
mod span;

pub use clock::Stopwatch;
pub use registry::{HistogramSummary, Snapshot, SweepRecord};
pub use report::{RunReport, SCHEMA_VERSION};
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Verbosity of the human-readable one-line span summaries on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LogLevel {
    /// No logging (the default).
    #[default]
    Off,
    /// Top-level spans only.
    Info,
    /// Every span, indented by nesting depth.
    Debug,
}

impl LogLevel {
    /// Parses the CLI spelling (`off` / `info` / `debug`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(LogLevel::Off),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Starts recording into the global registry.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording (already-recorded data is kept until drained).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` while the registry is recording. This is the single gate every
/// instrumentation site checks first; when `false`, instrumented code
/// pays one relaxed atomic load and nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the stderr span-logging verbosity.
pub fn set_log_level(level: LogLevel) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current stderr span-logging verbosity.
pub fn log_level() -> LogLevel {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        1 => LogLevel::Info,
        2 => LogLevel::Debug,
        _ => LogLevel::Off,
    }
}

/// Adds `delta` to the named counter (no-op while disabled).
///
/// Increments are serialised through the registry lock, so concurrent
/// callers (e.g. sweep workers) never lose updates.
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        registry::counter_add(name, delta);
    }
}

/// Increments the named counter by one (no-op while disabled).
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// The current value of a counter (0 when absent or disabled-from-birth).
pub fn counter_value(name: &str) -> u64 {
    registry::counter_value(name)
}

/// Sets the named gauge to `value`, replacing any previous value
/// (no-op while disabled).
pub fn set_gauge(name: &str, value: f64) {
    if enabled() {
        registry::set_gauge(name, value);
    }
}

/// Attaches a free-text note to the run report (no-op while disabled).
pub fn set_note(name: &str, text: &str) {
    if enabled() {
        registry::set_note(name, text);
    }
}

/// Records one observation (in seconds) into the named histogram
/// (no-op while disabled).
pub fn observe_seconds(name: &str, seconds: f64) {
    if enabled() {
        registry::observe(name, seconds);
    }
}

/// Opens a timed span; the returned RAII guard records the span into the
/// registry when dropped. Spans opened while a guard is live on the same
/// thread nest under it (parent/child tracking is per thread).
///
/// While disabled this returns an inert guard and records nothing — the
/// label is not even converted, so a disabled call site costs one
/// relaxed load and no allocation.
#[must_use = "a span measures until the guard is dropped"]
pub fn span(label: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return span::inert();
    }
    span::open(label.into())
}

/// Records one completed sweep from the executor (no-op while disabled).
pub fn record_sweep(record: SweepRecord) {
    if enabled() {
        registry::record_sweep(record);
    }
}

/// A non-destructive copy of everything recorded so far.
pub fn snapshot() -> Snapshot {
    registry::snapshot()
}

/// Removes and returns everything recorded so far (counters, gauges,
/// notes, histograms, spans, sweeps), leaving the registry empty.
pub fn drain() -> Snapshot {
    registry::drain()
}

/// Removes and returns only the recorded sweep entries, in recording
/// order — the compatibility hook behind `nm_sweep::stats::drain`.
pub fn drain_sweeps() -> Vec<SweepRecord> {
    registry::drain_sweeps()
}

/// Clears the registry without returning its contents.
pub fn reset() {
    let _ = registry::drain();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Serialises tests that touch the process-global registry.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = lock();
        reset();
        disable();
        counter_add("t.ignored", 5);
        set_gauge("t.ignored", 1.0);
        observe_seconds("t.ignored", 0.5);
        {
            let _s = span("t.ignored");
        }
        record_sweep(SweepRecord {
            label: "t.ignored".into(),
            items: 1,
            workers: 1,
            wall_ns: 1,
            faults: 0,
            retries: 0,
            poisoned_workers: 0,
        });
        let snap = drain();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.sweeps.is_empty());
    }

    #[test]
    fn counters_accumulate_and_drain_isolates() {
        let _guard = lock();
        reset();
        enable();
        counter_inc("t.count");
        counter_add("t.count", 9);
        assert_eq!(counter_value("t.count"), 10);
        let first = drain();
        assert_eq!(first.counters["t.count"], 10);
        // Drained: a fresh region starts from zero.
        counter_inc("t.count");
        let second = drain();
        disable();
        assert_eq!(second.counters["t.count"], 1);
    }

    #[test]
    fn nested_spans_record_depth_parent_and_monotonic_times() {
        let _guard = lock();
        reset();
        enable();
        {
            let _outer = span("t.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("t.inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = drain();
        disable();
        let inner = snap.spans.iter().find(|s| s.label == "t.inner").unwrap();
        let outer = snap.spans.iter().find(|s| s.label == "t.outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent.as_deref(), Some("t.outer"));
        // Containment: the child starts no earlier than the parent and
        // ends no later; durations are strictly positive.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.duration_ns <= outer.start_ns + outer.duration_ns);
        assert!(inner.duration_ns > 0 && outer.duration_ns > inner.duration_ns);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let _guard = lock();
        reset();
        enable();
        {
            let _outer = span("t.root");
            {
                let _a = span("t.a");
            }
            {
                let _b = span("t.b");
            }
        }
        let snap = drain();
        disable();
        for label in ["t.a", "t.b"] {
            let s = snap.spans.iter().find(|s| s.label == label).unwrap();
            assert_eq!(s.parent.as_deref(), Some("t.root"), "{label}");
            assert_eq!(s.depth, 1);
        }
    }

    #[test]
    fn spans_on_different_threads_do_not_nest() {
        let _guard = lock();
        reset();
        enable();
        let _outer = span("t.main-thread");
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _s = span("t.worker-thread");
                })
                .join()
                .unwrap();
        });
        drop(_outer);
        let snap = drain();
        disable();
        let worker = snap
            .spans
            .iter()
            .find(|s| s.label == "t.worker-thread")
            .unwrap();
        assert_eq!(worker.depth, 0);
        assert_eq!(worker.parent, None);
        let main = snap
            .spans
            .iter()
            .find(|s| s.label == "t.main-thread")
            .unwrap();
        assert_ne!(worker.thread, main.thread);
    }

    #[test]
    fn histogram_summarises_observations() {
        let _guard = lock();
        reset();
        enable();
        for v in [0.001, 0.002, 0.004, 0.008] {
            observe_seconds("t.lat", v);
        }
        let snap = drain();
        disable();
        let h = &snap.histograms["t.lat"];
        assert_eq!(h.count, 4);
        assert!((h.sum - 0.015).abs() < 1e-12);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 0.008);
        let p50 = h.quantile(0.5);
        assert!((0.001..=0.008).contains(&p50), "{p50}");
    }

    #[test]
    fn gauges_replace_and_notes_stick() {
        let _guard = lock();
        reset();
        enable();
        set_gauge("t.g", 1.0);
        set_gauge("t.g", 2.5);
        set_note("t.n", "hello");
        let snap = drain();
        disable();
        assert_eq!(snap.gauges["t.g"], 2.5);
        assert_eq!(snap.notes["t.n"], "hello");
    }

    #[test]
    fn concurrent_counter_increments_never_lose_updates() {
        let _guard = lock();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        counter_inc("t.atomic");
                    }
                });
            }
        });
        let snap = drain();
        disable();
        assert_eq!(snap.counters["t.atomic"], 8000);
    }

    #[test]
    fn log_level_round_trips() {
        assert_eq!(LogLevel::from_name("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::from_name("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::from_name("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::from_name("verbose"), None);
        let _guard = lock();
        let before = log_level();
        set_log_level(LogLevel::Debug);
        assert_eq!(log_level(), LogLevel::Debug);
        set_log_level(before);
    }

    #[test]
    fn drain_sweeps_takes_only_sweeps() {
        let _guard = lock();
        reset();
        enable();
        counter_inc("t.keep");
        record_sweep(SweepRecord {
            label: "t.sweep".into(),
            items: 4,
            workers: 2,
            wall_ns: 1000,
            faults: 1,
            retries: 2,
            poisoned_workers: 0,
        });
        let sweeps = drain_sweeps();
        assert_eq!(sweeps.len(), 1);
        assert_eq!(sweeps[0].label, "t.sweep");
        assert_eq!(sweeps[0].faults, 1);
        // Counters survive a sweeps-only drain.
        let snap = drain();
        disable();
        assert_eq!(snap.counters["t.keep"], 1);
        assert!(snap.sweeps.is_empty());
    }
}
