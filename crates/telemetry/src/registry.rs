//! The process-global store behind the public API: counters, gauges,
//! notes, histograms, span records and sweep records, all behind one
//! mutex (telemetry writes are rare relative to the work they measure,
//! and a single lock makes drain/reset atomic across sections).

use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// One completed sweep as the executor reports it — the unified-registry
/// home of what `nm_sweep::SweepStats` used to keep privately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRecord {
    /// Sweep label.
    pub label: String,
    /// Work items submitted.
    pub items: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep, in nanoseconds.
    pub wall_ns: u64,
    /// Items that exhausted their attempts.
    pub faults: usize,
    /// Extra contained attempts beyond each item's first try.
    pub retries: usize,
    /// Worker threads that died mid-sweep.
    pub poisoned_workers: usize,
}

/// Log₂-bucketed summary of a stream of observations (seconds).
///
/// Buckets span `2^-30 s` (≈ 1 ns) to `2^33 s`; observations outside
/// that range clamp to the end buckets. `count`/`sum`/`min`/`max` are
/// exact; [`quantile`](Self::quantile) is a bucket-resolution estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    buckets: Vec<u64>,
}

const BUCKETS: usize = 64;
const BUCKET_OFFSET: i32 = 30; // bucket 0 holds values < 2^-30 s

impl HistogramSummary {
    fn new() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKETS],
        }
    }

    fn bucket_of(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let idx = value.log2().floor() as i64 + i64::from(BUCKET_OFFSET);
        idx.clamp(0, BUCKETS as i64 - 1) as usize
    }

    fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Mean observation (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate with log-linear interpolation inside the
    /// winning log₂ bucket: the target rank `⌈q · count⌉` selects a
    /// bucket, and the estimate is placed at the matching geometric
    /// fraction of that bucket's `[2^k, 2^(k+1))` span, clamped to the
    /// observed `[min, max]`. Returns `0.0` when empty. The result is
    /// monotone in `q` and never more than one bucket away from the
    /// exact sample quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut before = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if before + n >= target {
                // Rank fraction within this bucket, in (0, 1]; a full
                // fraction lands exactly on the bucket's upper bound.
                let rank_fraction = (target - before) as f64 / n as f64;
                let log2_lower = f64::from(i as i32 - BUCKET_OFFSET);
                let estimate = (log2_lower + rank_fraction).exp2();
                return estimate.clamp(self.min, self.max);
            }
            before += n;
        }
        self.max
    }
}

/// A point-in-time copy of the registry (see [`crate::snapshot`] /
/// [`crate::drain`]). Maps are `BTreeMap`s so iteration — and therefore
/// every exported report — has stable key order.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Free-text annotations by name.
    pub notes: BTreeMap<String, String>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Completed sweeps, in completion order.
    pub sweeps: Vec<SweepRecord>,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    notes: BTreeMap<String, String>,
    histograms: BTreeMap<String, HistogramSummary>,
    spans: Vec<SpanRecord>,
    sweeps: Vec<SweepRecord>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn registry() -> MutexGuard<'static, Option<Registry>> {
    REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn with<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = registry();
    f(guard.get_or_insert_with(Registry::default))
}

/// The process-wide monotonic epoch all span timestamps are relative to.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn counter_add(name: &str, delta: u64) {
    with(|r| {
        let slot = r.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

pub(crate) fn counter_value(name: &str) -> u64 {
    registry()
        .as_ref()
        .and_then(|r| r.counters.get(name).copied())
        .unwrap_or(0)
}

pub(crate) fn set_gauge(name: &str, value: f64) {
    with(|r| {
        r.gauges.insert(name.to_owned(), value);
    });
}

pub(crate) fn set_note(name: &str, text: &str) {
    with(|r| {
        r.notes.insert(name.to_owned(), text.to_owned());
    });
}

pub(crate) fn observe(name: &str, value: f64) {
    with(|r| {
        r.histograms
            .entry(name.to_owned())
            .or_insert_with(HistogramSummary::new)
            .record(value);
    });
}

pub(crate) fn record_span(record: SpanRecord) {
    with(|r| r.spans.push(record));
}

pub(crate) fn record_sweep(record: SweepRecord) {
    with(|r| r.sweeps.push(record));
}

pub(crate) fn snapshot() -> Snapshot {
    registry()
        .as_ref()
        .map(|r| Snapshot {
            counters: r.counters.clone(),
            gauges: r.gauges.clone(),
            notes: r.notes.clone(),
            histograms: r.histograms.clone(),
            spans: r.spans.clone(),
            sweeps: r.sweeps.clone(),
        })
        .unwrap_or_default()
}

pub(crate) fn drain() -> Snapshot {
    registry()
        .take()
        .map(|r| Snapshot {
            counters: r.counters,
            gauges: r.gauges,
            notes: r.notes,
            histograms: r.histograms,
            spans: r.spans,
            sweeps: r.sweeps,
        })
        .unwrap_or_default()
}

pub(crate) fn drain_sweeps() -> Vec<SweepRecord> {
    registry()
        .as_mut()
        .map(|r| std::mem::take(&mut r.sweeps))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_clamps_and_orders() {
        assert_eq!(HistogramSummary::bucket_of(0.0), 0);
        assert_eq!(HistogramSummary::bucket_of(-1.0), 0);
        assert_eq!(HistogramSummary::bucket_of(f64::NAN), 0);
        let tiny = HistogramSummary::bucket_of(1e-12);
        let small = HistogramSummary::bucket_of(1e-6);
        let one = HistogramSummary::bucket_of(1.0);
        let huge = HistogramSummary::bucket_of(1e30);
        assert!(tiny <= small && small < one && one < huge);
        assert_eq!(huge, BUCKETS - 1);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = HistogramSummary::new();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let p10 = h.quantile(0.1);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p10 <= p50 && p50 <= p99);
        assert!(p10 >= h.min && p99 <= h.max);
        assert_eq!(HistogramSummary::new().quantile(0.5), 0.0);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut h = HistogramSummary::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 2.0);
    }

    #[test]
    fn quantile_of_constant_stream_is_that_constant() {
        // 1.5 sits strictly inside bucket [1, 2); the interpolated
        // estimate clamps to the degenerate [min, max] = [1.5, 1.5].
        let mut h = HistogramSummary::new();
        for _ in 0..100 {
            h.record(1.5);
        }
        assert_eq!(h.quantile(0.01), 1.5);
        assert_eq!(h.quantile(0.5), 1.5);
        assert_eq!(h.quantile(1.0), 1.5);
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // 50 observations at 1.0 (bucket [1, 2)) and 50 at 4.0
        // (bucket [4, 8)).
        let mut h = HistogramSummary::new();
        for _ in 0..50 {
            h.record(1.0);
        }
        for _ in 0..50 {
            h.record(4.0);
        }
        // p50 exhausts the low bucket: rank fraction 1.0 lands exactly
        // on its upper bound.
        assert_eq!(h.quantile(0.5), 2.0);
        // p100 exhausts the high bucket; 2^3 = 8 clamps to max = 4.
        assert_eq!(h.quantile(1.0), 4.0);
        // Rank 1 of 50 in [1, 2) interpolates to 2^(1/50), above min.
        let low = h.quantile(1e-9);
        assert!(low >= 1.0 && low <= 2f64.powf(0.02), "{low}");
        // A power-of-two observation lands at the bottom of its bucket
        // and the clamp still pins the estimate to the sample.
        let mut single = HistogramSummary::new();
        single.record(2.0);
        assert_eq!(single.quantile(0.5), 2.0);
    }

    #[test]
    fn quantile_handles_subnormal_bucket_zero() {
        // Values below 2^-30 collapse into bucket 0; the clamp keeps
        // the estimate inside the observed range.
        let mut h = HistogramSummary::new();
        h.record(1e-12);
        h.record(2e-12);
        let p50 = h.quantile(0.5);
        assert!((1e-12..=2e-12).contains(&p50), "{p50}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// The interpolated estimate never lands more than one log₂
        /// bucket away from the exact quantile of the recorded sample.
        #[test]
        fn quantile_tracks_exact_sample_quantile_within_one_bucket(
            samples in proptest::collection::vec(1e-12f64..1e3, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let mut h = HistogramSummary::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            let exact = sorted[rank - 1];
            let estimate = h.quantile(q);
            let eb = HistogramSummary::bucket_of(estimate) as i64;
            let xb = HistogramSummary::bucket_of(exact) as i64;
            proptest::prop_assert!(
                (eb - xb).abs() <= 1,
                "estimate {} (bucket {}) vs exact {} (bucket {})",
                estimate, eb, exact, xb
            );
            proptest::prop_assert!(estimate >= h.min && estimate <= h.max);
        }
    }
}
