//! Monotonic timing, centralized.
//!
//! Reading a wall clock inside a result-producing crate is a
//! determinism hazard: it invites time-dependent control flow and it
//! scatters `Instant::now()` call sites that the D3 static-analysis
//! rule (`nm-analyze`) would have to audit one by one. Instead, every
//! crate that needs to *measure* something — the sweep executor's wall
//! and per-item timings, the evaluator's surface-build histogram — goes
//! through this [`Stopwatch`], so the only crate that touches
//! `std::time` clocks is `nm-telemetry` itself.
//!
//! A `Stopwatch` is always live (it does not check the registry gate):
//! callers that feed durations into their own data structures, like the
//! executor's `SweepStats::wall`, need real readings whether or not
//! telemetry records. The [`observe`](Stopwatch::observe) convenience
//! *is* gated, like every other registry entry point.

use std::time::{Duration, Instant};

/// A started monotonic timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`start`](Self::start).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds, for histogram observations.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records the elapsed time into the named histogram (no-op while
    /// telemetry is disabled).
    pub fn observe(&self, name: &str) {
        crate::observe_seconds(name, self.elapsed_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_monotonically() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        std::thread::sleep(Duration::from_millis(1));
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_seconds() > 0.0);
    }
}
