//! Exportable run reports: a schema-versioned JSON metrics document
//! (stable key order, golden-test friendly) and a Chrome
//! `chrome://tracing` / Perfetto compatible trace-event rendering of the
//! recorded span tree.
//!
//! JSON is written by hand — this crate has no dependencies — using
//! Rust's shortest-roundtrip float formatting, so every emitted number
//! parses back to the identical bits.

use crate::registry::{HistogramSummary, Snapshot, SweepRecord};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Version of the metrics-report JSON schema. Bump when the key set or
/// meaning of an existing key changes.
///
/// v2: histograms gained a `p99` key and `p50`/`p95`/`p99` switched
/// from bucket-upper-bound estimates to log-linear interpolation.
pub const SCHEMA_VERSION: u64 = 2;

/// A metrics run report captured from a registry [`Snapshot`].
///
/// [`to_json`](Self::to_json) renders a stable document: object keys
/// appear in a fixed section order (`schema_version`, `generator`,
/// `notes`, `counters`, `gauges`, `spans`, `histograms`, `sweeps`) and
/// every map is sorted by key, so two runs that record the same names
/// produce reports with byte-identical structure.
#[derive(Debug, Clone)]
pub struct RunReport {
    snapshot: Snapshot,
}

impl RunReport {
    /// Captures a report from a registry snapshot.
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        RunReport { snapshot }
    }

    /// Captures a report from the live registry without draining it.
    pub fn capture() -> Self {
        Self::from_snapshot(crate::snapshot())
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Renders the schema-versioned metrics JSON document.
    pub fn to_json(&self) -> String {
        let s = &self.snapshot;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema_version");
        w.u64(SCHEMA_VERSION);
        w.key("generator");
        w.string("nm-telemetry");
        w.key("notes");
        w.string_map(&s.notes);
        w.key("counters");
        w.u64_map(&s.counters);
        w.key("gauges");
        w.f64_map(&s.gauges);
        w.key("spans");
        span_aggregates(&s.spans, &mut w);
        w.key("histograms");
        histograms(&s.histograms, &mut w);
        w.key("sweeps");
        sweeps(&s.sweeps, &mut w);
        w.end_object();
        w.finish()
    }

    /// Writes the metrics JSON document to `path` (with a trailing
    /// newline).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

/// Per-label aggregation of completed spans.
fn span_aggregates(spans: &[SpanRecord], w: &mut JsonWriter) {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }
    let mut by_label: BTreeMap<&str, Agg> = BTreeMap::new();
    for s in spans {
        let agg = by_label.entry(&s.label).or_default();
        if agg.count == 0 {
            agg.min_ns = s.duration_ns;
        }
        agg.count += 1;
        agg.total_ns += s.duration_ns;
        agg.min_ns = agg.min_ns.min(s.duration_ns);
        agg.max_ns = agg.max_ns.max(s.duration_ns);
    }
    w.begin_object();
    for (label, agg) in by_label {
        w.key(label);
        w.begin_object();
        w.key("count");
        w.u64(agg.count);
        w.key("total_ms");
        w.f64(agg.total_ns as f64 / 1e6);
        w.key("min_ms");
        w.f64(agg.min_ns as f64 / 1e6);
        w.key("max_ms");
        w.f64(agg.max_ns as f64 / 1e6);
        w.key("mean_ms");
        w.f64(agg.total_ns as f64 / 1e6 / agg.count as f64);
        w.end_object();
    }
    w.end_object();
}

fn histograms(map: &BTreeMap<String, HistogramSummary>, w: &mut JsonWriter) {
    w.begin_object();
    for (name, h) in map {
        w.key(name);
        w.begin_object();
        w.key("count");
        w.u64(h.count);
        w.key("sum");
        w.f64(h.sum);
        w.key("min");
        w.f64(if h.count == 0 { 0.0 } else { h.min });
        w.key("max");
        w.f64(if h.count == 0 { 0.0 } else { h.max });
        w.key("mean");
        w.f64(h.mean());
        w.key("p50");
        w.f64(h.quantile(0.5));
        w.key("p95");
        w.f64(h.quantile(0.95));
        w.key("p99");
        w.f64(h.quantile(0.99));
        w.end_object();
    }
    w.end_object();
}

fn sweeps(records: &[SweepRecord], w: &mut JsonWriter) {
    w.begin_array();
    for s in records {
        w.begin_object();
        w.key("label");
        w.string(&s.label);
        w.key("items");
        w.u64(s.items as u64);
        w.key("workers");
        w.u64(s.workers as u64);
        w.key("wall_ms");
        w.f64(s.wall_ns as f64 / 1e6);
        w.key("faults");
        w.u64(s.faults as u64);
        w.key("retries");
        w.u64(s.retries as u64);
        w.key("poisoned_workers");
        w.u64(s.poisoned_workers as u64);
        w.end_object();
    }
    w.end_array();
}

/// Renders the recorded spans as a Chrome trace-event JSON document
/// (`chrome://tracing` / Perfetto "JSON object format"): one complete
/// (`"ph": "X"`) event per span, timestamps and durations in
/// microseconds, one `tid` per recording thread. Events are sorted by
/// start time so the output is deterministic for a given span set.
pub fn chrome_trace_json(snapshot: &Snapshot) -> String {
    let mut spans: Vec<&SpanRecord> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_ns, s.depth, s.thread));
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit");
    w.string("ms");
    w.key("traceEvents");
    w.begin_array();
    for s in spans {
        w.begin_object();
        w.key("name");
        w.string(&s.label);
        w.key("cat");
        w.string("span");
        w.key("ph");
        w.string("X");
        w.key("ts");
        w.f64(s.start_ns as f64 / 1e3);
        w.key("dur");
        w.f64(s.duration_ns as f64 / 1e3);
        w.key("pid");
        w.u64(1);
        w.key("tid");
        w.u64(s.thread as u64 + 1);
        w.key("args");
        w.begin_object();
        w.key("depth");
        w.u64(s.depth as u64);
        if let Some(parent) = &s.parent {
            w.key("parent");
            w.string(parent);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Writes the Chrome trace-event document for `snapshot` to `path`.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_chrome_trace(snapshot: &Snapshot, path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(snapshot) + "\n")
}

/// Minimal streaming JSON writer with comma/indent bookkeeping. Keys are
/// emitted in caller order; all callers in this module feed it from
/// `BTreeMap`s or fixed sequences, which is what makes reports stable.
///
/// Public so sibling crates that emit machine-readable artifacts
/// (`nm-analyze`'s findings report, the bench harness) render them
/// through the same writer and inherit the same float formatting,
/// escaping and stable-layout conventions as the metrics report.
pub struct JsonWriter {
    out: String,
    // One entry per open container: `true` once it has a first element.
    stack: Vec<bool>,
    pending_key: bool,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter {
            out: String::new(),
            stack: Vec::new(),
            pending_key: false,
        }
    }

    fn comma(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
        }
        self.newline_indent();
    }

    fn newline_indent(&mut self) {
        if !self.stack.is_empty() {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    /// Opens a `{` object; subsequent `key`/value calls populate it.
    pub fn begin_object(&mut self) {
        self.comma();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let had_elems = self.stack.pop().unwrap_or(false);
        if had_elems {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a `[` array.
    pub fn begin_array(&mut self) {
        self.comma();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let had_elems = self.stack.pop().unwrap_or(false);
        if had_elems {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Emits an object key; the next value call becomes its value.
    pub fn key(&mut self, key: &str) {
        self.comma();
        self.push_escaped(key);
        self.out.push_str(": ");
        self.pending_key = true;
    }

    /// Emits an escaped string value.
    pub fn string(&mut self, value: &str) {
        self.comma();
        self.push_escaped(value);
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, value: u64) {
        self.comma();
        self.out.push_str(&value.to_string());
    }

    /// Emits a float value; non-finite values render as `null`.
    pub fn f64(&mut self, value: f64) {
        self.comma();
        if value.is_finite() {
            let text = format!("{value}");
            self.out.push_str(&text);
            // JSON numbers need a fractional part or exponent to stay
            // floats on the way back in; `{}` drops ".0" on integers.
            if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                self.out.push_str(".0");
            }
        } else {
            // NaN/Inf are not representable in JSON.
            self.out.push_str("null");
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Emits a whole object of string values in map order.
    pub fn string_map(&mut self, map: &BTreeMap<String, String>) {
        self.begin_object();
        for (k, v) in map {
            self.key(k);
            self.string(v);
        }
        self.end_object();
    }

    /// Emits a whole object of integer values in map order.
    pub fn u64_map(&mut self, map: &BTreeMap<String, u64>) {
        self.begin_object();
        for (k, v) in map {
            self.key(k);
            self.u64(*v);
        }
        self.end_object();
    }

    /// Emits a whole object of float values in map order.
    pub fn f64_map(&mut self, map: &BTreeMap<String, f64>) {
        self.begin_object();
        for (k, v) in map {
            self.key(k);
            self.f64(*v);
        }
        self.end_object();
    }

    /// The rendered document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("b.count".into(), 2);
        snap.counters.insert("a.count".into(), 1);
        snap.gauges.insert("g.speedup".into(), 12.5);
        snap.notes
            .insert("experiment".into(), "demo \"quoted\"".into());
        snap.spans.push(SpanRecord {
            label: "outer".into(),
            parent: None,
            depth: 0,
            thread: 0,
            start_ns: 1_000,
            duration_ns: 5_000_000,
        });
        snap.spans.push(SpanRecord {
            label: "inner".into(),
            parent: Some("outer".into()),
            depth: 1,
            thread: 0,
            start_ns: 2_000,
            duration_ns: 1_000_000,
        });
        snap.sweeps.push(SweepRecord {
            label: "eval-surfaces".into(),
            items: 8,
            workers: 4,
            wall_ns: 3_000_000,
            faults: 0,
            retries: 0,
            poisoned_workers: 0,
        });
        snap
    }

    #[test]
    fn report_has_fixed_section_order_and_sorted_keys() {
        let json = RunReport::from_snapshot(sample_snapshot()).to_json();
        let order = [
            "\"schema_version\"",
            "\"generator\"",
            "\"notes\"",
            "\"counters\"",
            "\"gauges\"",
            "\"spans\"",
            "\"histograms\"",
            "\"sweeps\"",
        ];
        let mut last = 0;
        for section in order {
            let at = json.find(section).unwrap_or_else(|| panic!("{section}"));
            assert!(at > last || last == 0, "section {section} out of order");
            last = at;
        }
        // BTreeMap ordering: a.count before b.count.
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn identical_snapshots_render_identical_reports() {
        let a = RunReport::from_snapshot(sample_snapshot()).to_json();
        let b = RunReport::from_snapshot(sample_snapshot()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn strings_are_escaped() {
        let json = RunReport::from_snapshot(sample_snapshot()).to_json();
        assert!(json.contains(r#""demo \"quoted\"""#), "{json}");
    }

    #[test]
    fn floats_stay_floats_and_non_finite_becomes_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(2.0);
        w.f64(0.1);
        w.f64(f64::NAN);
        w.f64(f64::INFINITY);
        w.end_array();
        let out = w.finish();
        assert!(out.contains("2.0"), "{out}");
        assert!(out.contains("0.1"), "{out}");
        assert_eq!(out.matches("null").count(), 2, "{out}");
    }

    #[test]
    fn span_aggregation_counts_min_max() {
        let mut snap = sample_snapshot();
        snap.spans.push(SpanRecord {
            label: "outer".into(),
            parent: None,
            depth: 0,
            thread: 1,
            start_ns: 9_000,
            duration_ns: 7_000_000,
        });
        let json = RunReport::from_snapshot(snap).to_json();
        // Two "outer" spans of 5 ms and 7 ms: count 2, min 5, max 7.
        let outer = json.split("\"outer\"").nth(1).expect("outer section");
        assert!(outer.contains("\"count\": 2"), "{outer}");
        assert!(outer.contains("\"min_ms\": 5.0"), "{outer}");
        assert!(outer.contains("\"max_ms\": 7.0"), "{outer}");
    }

    #[test]
    fn chrome_trace_is_sorted_and_complete() {
        let json = chrome_trace_json(&sample_snapshot());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        // Events sorted by start time: outer (1 us) before inner (2 us).
        assert!(json.find("\"outer\"").unwrap() < json.find("\"inner\"").unwrap());
        // Microsecond timestamps.
        assert!(json.contains("\"ts\": 1.0"), "{json}");
        assert!(json.contains("\"dur\": 5000.0"), "{json}");
        assert!(json.contains("\"parent\": \"outer\""), "{json}");
    }

    #[test]
    fn empty_snapshot_still_renders_every_section() {
        let json = RunReport::from_snapshot(Snapshot::default()).to_json();
        for section in [
            "notes",
            "counters",
            "gauges",
            "spans",
            "histograms",
            "sweeps",
        ] {
            assert!(json.contains(&format!("\"{section}\"")), "{section}");
        }
        let trace = chrome_trace_json(&Snapshot::default());
        assert!(trace.contains("\"traceEvents\": []"), "{trace}");
    }

    #[test]
    fn write_report_and_trace_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("nm-telemetry-test-report");
        std::fs::create_dir_all(&dir).unwrap();
        let report = RunReport::from_snapshot(sample_snapshot());
        let metrics = dir.join("metrics.json");
        report.write(&metrics).unwrap();
        assert_eq!(
            std::fs::read_to_string(&metrics).unwrap(),
            report.to_json() + "\n"
        );
        let trace = dir.join("trace.json");
        write_chrome_trace(report.snapshot(), &trace).unwrap();
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("traceEvents"));
    }
}
