//! Hierarchical timed spans: RAII guards over monotonic clocks with
//! per-thread parent/child nesting.

use crate::registry;
use std::cell::RefCell;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span label, e.g. `"eval.ensure_surfaces"`.
    pub label: String,
    /// Label of the span this one nested under, if any (same thread).
    pub parent: Option<String>,
    /// Nesting depth on its thread (0 = top level).
    pub depth: usize,
    /// Small dense id of the recording thread (stable within a process).
    pub thread: usize,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

thread_local! {
    /// Labels of the spans currently open on this thread, outermost first.
    static OPEN: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Maps `ThreadId`s to small dense indices for trace export.
fn thread_index() -> usize {
    static THREADS: Mutex<Vec<ThreadId>> = Mutex::new(Vec::new());
    let id = std::thread::current().id();
    let mut threads = THREADS.lock().unwrap_or_else(|p| p.into_inner());
    match threads.iter().position(|t| *t == id) {
        Some(i) => i,
        None => {
            threads.push(id);
            threads.len() - 1
        }
    }
}

/// RAII guard returned by [`crate::span`]; records the span when dropped.
/// Inert (records nothing) when telemetry was disabled at open time.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<Active>,
}

#[derive(Debug)]
struct Active {
    label: String,
    parent: Option<String>,
    depth: usize,
    start: Instant,
}

/// An inert guard: drops without recording anything.
pub(crate) fn inert() -> SpanGuard {
    SpanGuard { active: None }
}

pub(crate) fn open(label: String) -> SpanGuard {
    if !crate::enabled() {
        return inert();
    }
    // Touch the epoch before taking the start time so `start_ns` is
    // never negative relative to it.
    let _ = registry::epoch();
    let (parent, depth) = OPEN.with(|open| {
        let mut open = open.borrow_mut();
        let parent = open.last().cloned();
        let depth = open.len();
        open.push(label.clone());
        (parent, depth)
    });
    SpanGuard {
        active: Some(Active {
            label,
            parent,
            depth,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration = active.start.elapsed();
        OPEN.with(|open| {
            let mut open = open.borrow_mut();
            // Unbalanced drops (a guard outliving deeper guards) cannot
            // happen through the public RAII API, but stay defensive.
            if open.last() == Some(&active.label) {
                open.pop();
            }
        });
        let start_ns = active
            .start
            .duration_since(registry::epoch())
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let record = SpanRecord {
            label: active.label,
            parent: active.parent,
            depth: active.depth,
            thread: thread_index(),
            start_ns,
            duration_ns: duration.as_nanos().min(u128::from(u64::MAX)) as u64,
        };
        log_span(&record);
        registry::record_span(record);
    }
}

/// One-line human-readable span summary on stderr, gated by the global
/// log level: `Info` prints top-level spans, `Debug` prints every span
/// indented by depth.
fn log_span(record: &SpanRecord) {
    let level = crate::log_level();
    let log = match level {
        crate::LogLevel::Off => false,
        crate::LogLevel::Info => record.depth == 0,
        crate::LogLevel::Debug => true,
    };
    if log {
        let ms = record.duration_ns as f64 / 1e6;
        eprintln!(
            "[telemetry] {:indent$}{} {ms:.3} ms",
            "",
            record.label,
            indent = record.depth * 2
        );
    }
}
