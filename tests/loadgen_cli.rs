//! End-to-end tests of `nmcache loadgen` and `nmcache benchdiff`:
//! deterministic replay, the serve-report schema, and the SLO
//! regression gate's exit-code contract.

use std::path::Path;
use std::process::Command;

fn nmcache() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nmcache"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nmcache-loadgen-{name}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn run_loadgen(out: &Path, seed: &str) {
    let status = nmcache()
        .args(["loadgen", "--quick", "--queries", "24", "--seed", seed])
        .arg("--out")
        .arg(out)
        .status()
        .expect("binary runs");
    assert!(status.success());
}

fn section<'a>(doc: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    doc.get(key)
        .unwrap_or_else(|| panic!("report missing section {key:?}"))
}

#[test]
fn loadgen_report_is_replay_deterministic_with_percentiles_per_class() {
    let dir = temp_dir("determinism");
    let a_path = dir.join("a.json");
    let b_path = dir.join("b.json");
    run_loadgen(&a_path, "2005");
    run_loadgen(&b_path, "2005");

    let a = serde_json::parse_value(&std::fs::read_to_string(&a_path).expect("a.json"))
        .expect("a parses");
    let b = serde_json::parse_value(&std::fs::read_to_string(&b_path).expect("b.json"))
        .expect("b parses");

    // Counters and the mix note are byte-identical across replays of
    // the same seed; only timing (gauges, histograms, spans) may move.
    assert_eq!(section(&a, "counters"), section(&b, "counters"));
    assert_eq!(
        section(&a, "notes").get("loadgen.mix"),
        section(&b, "notes").get("loadgen.mix")
    );
    assert_eq!(
        section(&a, "schema_version"),
        &serde_json::Value::U64(nmcache::telemetry::SCHEMA_VERSION)
    );

    // Every query class publishes p50/p95/p99.
    let histograms = section(&a, "histograms");
    for class in ["cold", "warm", "tuple", "adversarial", "mixed"] {
        let hist = histograms
            .get(&format!("loadgen.latency.{class}"))
            .unwrap_or_else(|| panic!("missing histogram for class {class}"));
        for key in ["p50", "p95", "p99"] {
            let quantile = hist.get(key).unwrap_or_else(|| panic!("{class}/{key}"));
            assert!(
                matches!(quantile, serde_json::Value::F64(v) if *v > 0.0),
                "{class}/{key}: {quantile:?}"
            );
        }
    }
}

#[test]
fn different_seeds_produce_different_mixes() {
    let dir = temp_dir("seeds");
    let a_path = dir.join("a.json");
    let b_path = dir.join("b.json");
    run_loadgen(&a_path, "1");
    run_loadgen(&b_path, "2");
    let a = serde_json::parse_value(&std::fs::read_to_string(&a_path).expect("a.json"))
        .expect("a parses");
    let b = serde_json::parse_value(&std::fs::read_to_string(&b_path).expect("b.json"))
        .expect("b parses");
    assert_ne!(
        section(&a, "notes").get("loadgen.mix"),
        section(&b, "notes").get("loadgen.mix")
    );
}

#[test]
fn benchdiff_self_comparison_exits_zero() {
    let dir = temp_dir("selfcompare");
    let path = dir.join("serve.json");
    run_loadgen(&path, "2005");
    let out = nmcache()
        .arg("benchdiff")
        .arg(&path)
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("none regressed"), "{text}");
}

#[test]
fn benchdiff_flags_an_injected_p99_regression_with_exit_7() {
    let dir = temp_dir("regression");
    let base_path = dir.join("base.json");
    run_loadgen(&base_path, "2005");
    let base = std::fs::read_to_string(&base_path).expect("base.json");

    // Inject a 3x regression on every p99 by rescaling the candidate's
    // p99 fields (keeps the machine-scale gauge untouched, so the gate
    // sees a genuine slowdown rather than a slower host).
    let mut value = serde_json::parse_value(&base).expect("base parses");
    let serde_json::Value::Object(sections) = &mut value else {
        panic!("report must be an object");
    };
    let histograms = sections
        .iter_mut()
        .find(|(k, _)| k == "histograms")
        .map(|(_, v)| v)
        .expect("histograms section");
    let serde_json::Value::Object(histograms) = histograms else {
        panic!("histograms must be an object");
    };
    let mut injected = 0;
    for (_, hist) in histograms.iter_mut() {
        let serde_json::Value::Object(fields) = hist else {
            continue;
        };
        for (key, field) in fields.iter_mut() {
            if key != "p99" {
                continue;
            }
            match field {
                serde_json::Value::F64(v) => *v *= 3.0,
                serde_json::Value::U64(n) => *field = serde_json::Value::F64(*n as f64 * 3.0),
                other => panic!("non-numeric p99: {other:?}"),
            }
            injected += 1;
        }
    }
    assert!(injected > 0, "no p99 fields to inject into");
    let cand_path = dir.join("cand.json");
    std::fs::write(&cand_path, value.to_json()).expect("write cand");

    let out = nmcache()
        .arg("benchdiff")
        .arg(&base_path)
        .arg(&cand_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(7), "SLO regressions exit with 7");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSED"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("regressed past"), "{err}");
}

#[test]
fn benchdiff_rejects_malformed_and_missing_reports() {
    let dir = temp_dir("malformed");
    let good = dir.join("good.json");
    run_loadgen(&good, "2005");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").expect("write bad");

    let out = nmcache()
        .arg("benchdiff")
        .arg(&good)
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "malformed reports exit with 2");

    let out = nmcache()
        .arg("benchdiff")
        .arg(&good)
        .arg(dir.join("nonexistent.json"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(5), "missing files exit with 5");
}
