//! Integration test of the full designer pipeline: organisation
//! exploration → stability check → knob optimisation → variation stress
//! (the `design_flow` example as assertions).

use nmcache::core::groups::Scheme;
use nmcache::core::sensitivity::{all_components, component_sensitivity};
use nmcache::core::single::SingleCacheStudy;
use nmcache::core::variation::VariationStudy;
use nmcache::device::snm::{is_stable, read_snm};
use nmcache::device::units::{Angstroms, Volts};
use nmcache::device::variation::VariationModel;
use nmcache::device::{KnobGrid, KnobPoint, TechnologyNode};
use nmcache::geometry::explore::{best, explore, Objective};
use nmcache::geometry::{CacheCircuit, CacheConfig, ComponentId};

#[test]
fn explore_then_optimize_then_stress() {
    let tech = TechnologyNode::bptm65();
    let config = CacheConfig::new(32 * 1024, 64, 4).expect("valid");

    // Exploration yields a folding at least as good as the heuristic.
    let chosen = best(config, &tech, Objective::EnergyDelay).expect("foldings exist");
    let heuristic = CacheCircuit::new(config, &tech);
    let knobs = nmcache::geometry::ComponentKnobs::default();
    let chosen_circuit = CacheCircuit::with_organization(config, &tech, chosen.org);
    let edp = |c: &CacheCircuit| {
        let m = c.analyze(&knobs);
        m.access_time().0 * m.read_energy().0
    };
    assert!(edp(&chosen_circuit) <= edp(&heuristic) + 1e-30);

    // The cell stays stable across the whole Tox range under scaling.
    for tox in [10.0, 12.0, 14.0] {
        let p = KnobPoint::new(Volts(0.3), Angstroms(tox)).expect("legal");
        let snm = read_snm(&tech, 0.2 / 0.15, p, tech.drawn_length(p.tox()));
        assert!(is_stable(snm), "Tox {tox}: {} mV", snm.0 * 1e3);
    }

    // Optimisation on the explored circuit meets its deadline.
    let study = SingleCacheStudy::with_circuit(chosen_circuit.clone(), KnobGrid::coarse());
    let deadline = chosen_circuit.fastest_access_time() * 1.15;
    let sol = study
        .optimize(Scheme::Split, deadline)
        .expect("15% slack feasible");
    assert!(sol.access_time.0 <= deadline.0 + 1e-15);

    // The optimum parks the cells conservatively.
    let cells = sol.knobs[ComponentId::MemoryArray];
    let periph = sol.knobs[ComponentId::Decoder];
    assert!(cells.vth().0 >= periph.vth().0);
    assert!(cells.tox().0 >= periph.tox().0);

    // Variation lands the mean in a sane band around nominal. (It can dip
    // *below* nominal when an optimum sits on the knob-range edge: die
    // corners clamp asymmetrically toward lower leakage.)
    let vs = VariationStudy::new(study, VariationModel::typical_65nm(), 100, 5);
    let rows = vs.evaluate(&[deadline]);
    assert_eq!(rows.len(), 1);
    let r = &rows[0];
    assert!(r.distribution.mean >= r.nominal.0 * 0.6);
    assert!(r.distribution.mean <= r.nominal.0 * 2.0);
    assert!(r.distribution.p95 >= r.distribution.p50);
}

#[test]
fn exploration_is_consistent_with_sensitivities() {
    // At the fastest corner every component's Tox exchange rate is strong
    // (the gate floor is huge), matching why all optima move Tox first.
    let tech = TechnologyNode::bptm65();
    let circuit = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).expect("valid"), &tech);
    let s = component_sensitivity(&circuit, ComponentId::MemoryArray, KnobPoint::fastest());
    assert!(
        s.tox_exchange_rate() > 1.0,
        "tox deal = {}",
        s.tox_exchange_rate()
    );
    // And every component agrees on the signs everywhere we sample.
    for at in [
        KnobPoint::fastest(),
        KnobPoint::nominal(),
        KnobPoint::lowest_leakage(),
    ] {
        for s in all_components(&circuit, at) {
            assert!(s.leak_per_vth <= 0.0 && s.leak_per_tox <= 0.0);
        }
    }
}

#[test]
fn every_folding_the_explorer_returns_is_analyzable() {
    let tech = TechnologyNode::bptm65();
    let config = CacheConfig::new(16 * 1024, 64, 4).expect("valid");
    let all = explore(config, &tech, Objective::AccessTime);
    assert!(!all.is_empty());
    for e in &all {
        assert!(e.metrics.access_time().0 > 0.0);
        assert!(e.metrics.leakage().total().0 > 0.0);
        assert!(e.score.is_finite());
    }
}
