//! Round-trip tests of the `serde` implementations on the workspace's
//! data-structure types (C-SERDE). `serde_json` is a dev-dependency used
//! only here.

use nmcache::archsim::{Access, CacheParams, PairStats, Replacement};
use nmcache::core::report::{Series, Table};
use nmcache::device::fit::{DelayFit, LeakageFit};
use nmcache::device::leakage::LeakageBreakdown;
use nmcache::device::units::{Angstroms, Seconds, Volts, Watts};
use nmcache::device::variation::VariationDistribution;
use nmcache::device::{KnobGrid, KnobPoint, TechnologyNode};
use nmcache::geometry::{CacheCircuit, CacheConfig, ComponentKnobs, Organization};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt::Debug;

fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serialises");
    let back: T = serde_json::from_str(&json).expect("deserialises");
    assert_eq!(&back, value, "{json}");
}

#[test]
fn units_roundtrip() {
    roundtrip(&Volts(0.3));
    roundtrip(&Angstroms(12.5));
    roundtrip(&Seconds(1.5e-9));
    roundtrip(&Watts(0.005));
}

#[test]
fn knobs_roundtrip() {
    roundtrip(&KnobPoint::nominal());
    roundtrip(&KnobGrid::paper());
    roundtrip(&ComponentKnobs::split(
        KnobPoint::lowest_leakage(),
        KnobPoint::fastest(),
    ));
}

#[test]
fn technology_and_geometry_roundtrip() {
    roundtrip(&TechnologyNode::bptm65());
    let config = CacheConfig::new(64 * 1024, 64, 4).unwrap();
    roundtrip(&config);
    roundtrip(&config.organization());
    let custom = Organization::custom(config, 128, 64).unwrap();
    roundtrip(&custom);
}

#[test]
fn metrics_roundtrip() {
    let tech = TechnologyNode::bptm65();
    let circuit = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech);
    let metrics = circuit.analyze(&ComponentKnobs::default());
    roundtrip(&metrics);
    roundtrip(&LeakageBreakdown::ZERO);
}

#[test]
fn archsim_types_roundtrip() {
    roundtrip(&Access::read(0x40));
    roundtrip(&Access::write(u64::MAX));
    roundtrip(&CacheParams::new(16 * 1024, 64, 4).unwrap());
    roundtrip(&Replacement::Lru);
    roundtrip(&PairStats {
        l1_miss_rate: 0.05,
        l2_local_miss_rate: 0.25,
        l1_writeback_rate: 0.01,
        write_fraction: 0.3,
        measured: 1000,
    });
}

#[test]
fn fits_and_distributions_roundtrip() {
    roundtrip(&LeakageFit {
        a0: 1e-4,
        a1: 3e-2,
        exp_vth: -22.0,
        a2: 800.0,
        exp_tox: -1.3,
        r_squared: 0.999,
    });
    roundtrip(&DelayFit {
        k0: 50.0,
        k1: 2.0,
        exp_vth: 5.5,
        k2: 12.0,
        r_squared: 0.9999,
    });
    roundtrip(&VariationDistribution::from_samples(vec![1.0, 2.0, 3.0]));
}

#[test]
fn report_types_roundtrip() {
    let mut t = Table::new("demo", &["a", "b"]);
    t.push_row(vec!["1".into(), "2".into()]);
    roundtrip(&t);
    let mut s = Series::new("curve");
    s.points = vec![(1.0, 2.0), (3.0, 4.0)];
    roundtrip(&s);
}

#[test]
fn json_is_stable_for_knob_points() {
    // The wire format is part of the public contract: KnobPoint keeps its
    // named fields.
    let json = serde_json::to_value(KnobPoint::nominal()).unwrap();
    assert!(json.get("vth").is_some(), "{json}");
    assert!(json.get("tox").is_some(), "{json}");
}
