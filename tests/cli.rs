//! End-to-end tests of the `nmcache` binary (spawned as a subprocess).

use std::process::Command;

fn nmcache() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nmcache"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = nmcache().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("fig1"));
    assert!(text.contains("trace-sim"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = nmcache().arg("frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn zero_steps_is_a_usage_error() {
    let out = nmcache()
        .args(["schemes", "--steps", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--steps must be positive"), "{err}");
    assert!(err.contains("USAGE"), "usage hint expected: {err}");
}

#[test]
fn missing_trace_file_is_an_io_error() {
    let out = nmcache()
        .args(["trace-sim", "--trace", "/nonexistent/never.trace"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(5), "I/O errors exit with 5");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/nonexistent/never.trace"), "{err}");
    assert!(err.contains("hint:"), "usage hint expected: {err}");
}

#[test]
fn unknown_suite_is_a_usage_error_code() {
    let out = nmcache()
        .args(["decay", "--suite", "bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
}

#[test]
fn impossible_geometry_is_a_study_error_code() {
    // 3 KB is not a power of two; the model layer rejects it.
    let out = nmcache()
        .args(["fit", "--l1", "3"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "study errors exit with 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn corrupt_binary_trace_is_a_trace_error_code() {
    let dir = std::env::temp_dir().join("nmcache-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("corrupt.bin");
    // Valid magic + version, then a truncated record.
    let mut bytes = b"NMTR".to_vec();
    bytes.push(1); // version
    bytes.extend_from_slice(&[0u8; 4]); // half a 9-byte record
    std::fs::write(&trace, &bytes).expect("trace written");
    let out = nmcache()
        .args(["trace-sim", "--trace"])
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4), "trace errors exit with 4");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trace:"), "{err}");
    assert!(err.contains("offset"), "byte offset expected: {err}");
}

#[test]
fn fig1_writes_csv() {
    let dir = std::env::temp_dir().join("nmcache-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("fig1.csv");
    let out = nmcache()
        .args(["fig1", "--csv"])
        .arg(&csv)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Tox=10A"));
    assert!(text.contains("Vth=400mV"));
    let written = std::fs::read_to_string(&csv).expect("csv written");
    assert!(written.starts_with("series,"));
    assert!(written.lines().count() > 40);
}

#[test]
fn fit_reports_high_r_squared() {
    let out = nmcache().arg("fit").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memory-array"));
    // Every R² cell should be ≥ 0.9x.
    assert!(text.contains("0.9"), "{text}");
}

#[test]
fn trace_sim_replays_a_file() {
    let dir = std::env::temp_dir().join("nmcache-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("t.trace");
    std::fs::write(&trace, "# demo\nR 0x40\nW 0x80\nR 0x40\n").expect("trace written");
    let out = nmcache()
        .args(["trace-sim", "--l1", "8", "--l2", "256", "--trace"])
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 references"));
    assert!(text.contains("Trace replay"));
}

#[test]
fn trace_sim_reports_malformed_traces() {
    let dir = std::env::temp_dir().join("nmcache-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("bad.trace");
    std::fs::write(&trace, "R 0x40\nBOGUS LINE\n").expect("trace written");
    let out = nmcache()
        .args(["trace-sim", "--trace"])
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn explore_ranks_foldings() {
    let out = nmcache()
        .args(["explore", "--l1", "32", "--steps", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Subarray foldings"));
    assert!(text.contains("mats"));
    // At least the three requested rows of numbers.
    assert!(text.lines().filter(|l| l.contains('.')).count() >= 3);
}

#[test]
fn unknown_suite_is_rejected() {
    let out = nmcache()
        .args(["decay", "--suite", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown suite"));
}

/// A tiny two-cell campaign invocation rooted at `dir`.
fn campaign_cmd(dir: &std::path::Path) -> Command {
    let mut cmd = nmcache();
    cmd.args([
        "campaign",
        "--l1-sizes",
        "16",
        "--l2-sizes",
        "64",
        "--schemes",
        "uniform",
        "--temps",
        "40,80",
        "--quick",
        "--checkpoint-every",
        "1",
        "--out",
    ])
    .arg(dir);
    cmd
}

fn campaign_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nmcache-cli-campaign-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn campaign_without_out_is_a_usage_error() {
    let out = nmcache()
        .args(["campaign", "--quick"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--out"), "{err}");
}

#[test]
fn campaign_interrupted_and_resumed_matches_uninterrupted() {
    // Golden: one uninterrupted run writing a CSV.
    let golden_dir = campaign_dir("golden");
    let golden_csv = golden_dir.join("table.csv");
    let out = campaign_cmd(&golden_dir)
        .arg("--csv")
        .arg(&golden_csv)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let golden = std::fs::read_to_string(&golden_csv).expect("golden csv");

    // Interrupted: one cell per process, resuming from the checkpoint.
    let dir = campaign_dir("resume");
    let out = campaign_cmd(&dir)
        .args(["--max-cells", "1"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 of 2 cells done"), "{text}");
    assert!(text.contains("rerun the same command"), "{text}");

    let csv = dir.join("table.csv");
    let out = campaign_cmd(&dir)
        .arg("--csv")
        .arg(&csv)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 computed, 1 resumed"), "{text}");
    let resumed = std::fs::read_to_string(&csv).expect("resumed csv");
    assert_eq!(resumed, golden, "resumed table must match uninterrupted");

    let _ = std::fs::remove_dir_all(&golden_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_corrupt_checkpoint_is_a_persistence_error_and_fresh_recovers() {
    let dir = campaign_dir("corrupt");
    let out = campaign_cmd(&dir)
        .args(["--max-cells", "1"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Flip one byte in the middle of the checkpoint.
    let ckpt = dir.join("checkpoint.nmck");
    let mut bytes = std::fs::read(&ckpt).expect("checkpoint exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&ckpt, &bytes).expect("checkpoint rewritten");

    let out = campaign_cmd(&dir).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(6), "persistence errors exit with 6");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--fresh"), "recovery hint expected: {err}");

    let out = campaign_cmd(&dir)
        .arg("--fresh")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 of 2 cells done"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thermal_runs_quickly_end_to_end() {
    let out = nmcache().arg("thermal").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Temperature sensitivity"));
    assert!(text.contains("gate fraction"));
}
