//! Cross-crate integration tests: the full pipeline from workload
//! simulation through circuit modelling to constrained optimisation,
//! checking the paper's headline findings end to end.

use nmcache::archsim::workload::SuiteKind;
use nmcache::archsim::MissRateTable;
use nmcache::core::amat::MainMemory;
use nmcache::core::groups::{cache_groups, CostKind, Scheme};
use nmcache::core::memsys::{MemorySystemStudy, TupleCounts};
use nmcache::core::single::SingleCacheStudy;
use nmcache::core::twolevel::{TwoLevelStudy, STANDARD_SUITES};
use nmcache::device::units::Seconds;
use nmcache::device::{KnobGrid, TechnologyNode};
use nmcache::opt::anneal::{anneal, AnnealConfig};
use nmcache::opt::constraint::best_under_deadline;
use nmcache::opt::merge::system_front;
use std::sync::OnceLock;

fn quick_study() -> &'static TwoLevelStudy {
    static STUDY: OnceLock<TwoLevelStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        let missrates = MissRateTable::build(
            &[4 * 1024, 16 * 1024, 64 * 1024],
            &[256 * 1024, 1024 * 1024, 4 * 1024 * 1024],
            &STANDARD_SUITES,
            2005,
            400_000,
            400_000,
        );
        TwoLevelStudy::new(
            missrates,
            TechnologyNode::bptm65(),
            KnobGrid::coarse(),
            MainMemory::default(),
        )
    })
}

#[test]
fn headline_scheme_ranking_on_paper_grid() {
    // E2 on the paper's fine grid (not the coarse test grid).
    let study = SingleCacheStudy::paper_16kb().expect("valid");
    let deadlines = study.delay_sweep(6);
    for &deadline in &deadlines[1..] {
        let l1 = study
            .optimize(Scheme::PerComponent, deadline)
            .expect("feasible")
            .leakage
            .total()
            .0;
        let l2 = study
            .optimize(Scheme::Split, deadline)
            .expect("feasible")
            .leakage
            .total()
            .0;
        let l3 = study
            .optimize(Scheme::Uniform, deadline)
            .expect("feasible")
            .leakage
            .total()
            .0;
        assert!(l1 <= l2 + 1e-15 && l2 <= l3 + 1e-15);
        // Scheme II within 10 % of Scheme I on the fine grid.
        assert!(l2 <= l1 * 1.10, "II = {l2:.3e} vs I = {l1:.3e}");
    }
}

#[test]
fn l1_size_sweep_prefers_small_l1() {
    // E5: with a fixed 1 MB L2 and a mid-slack AMAT target, a small L1
    // (≤ 16 KB) minimises total leakage.
    let study = quick_study();
    let l1_sizes = [4 * 1024, 16 * 1024, 64 * 1024];
    let mut best = f64::INFINITY;
    for &l1 in &l1_sizes {
        best = best.min(
            study
                .min_amat_l1_fixed(l1, 1024 * 1024)
                .expect("simulated")
                .0,
        );
    }
    let target = Seconds(best * 1.12);
    let sweep = study
        .l1_size_sweep(&l1_sizes, 1024 * 1024, target)
        .expect("simulated");
    let winner = sweep.winner().expect("some L1 feasible");
    assert!(
        winner.size_bytes <= 16 * 1024,
        "winner = {} KB\n{}",
        winner.size_bytes / 1024,
        sweep.to_table()
    );
}

#[test]
fn l1_total_leakage_monotone_in_l1_size_when_feasible() {
    // Among feasible rows, total leakage should not *decrease* as the L1
    // grows (bigger L1s only add leakage at near-flat miss rates).
    let study = quick_study();
    let l1_sizes = [4 * 1024, 16 * 1024, 64 * 1024];
    let mut best = f64::INFINITY;
    for &l1 in &l1_sizes {
        best = best.min(
            study
                .min_amat_l1_fixed(l1, 1024 * 1024)
                .expect("simulated")
                .0,
        );
    }
    let target = Seconds(best * 1.20);
    let sweep = study
        .l1_size_sweep(&l1_sizes, 1024 * 1024, target)
        .expect("simulated");
    let feasible: Vec<f64> = sweep
        .rows
        .iter()
        .filter_map(|r| r.total_leakage.map(|w| w.0))
        .collect();
    assert!(feasible.len() >= 2, "{}", sweep.to_table());
    // Tolerance: the 4 KB -> 16 KB step still sees a real miss-rate drop,
    // which lets the L2 relax to leakier (cheaper) knobs and can dip total
    // leakage by several percent before the near-flat regime takes over.
    for w in feasible.windows(2) {
        assert!(
            w[1] >= w[0] * 0.92,
            "leakage fell sharply with bigger L1: {feasible:?}"
        );
    }
}

#[test]
fn annealer_confirms_exact_optimizer_on_real_cache() {
    // Independent cross-check: simulated annealing over the real 16 KB
    // Scheme II groups lands within 5 % of the exact merge solver.
    let study = SingleCacheStudy::paper_16kb().expect("valid");
    let groups = cache_groups(
        study.circuit(),
        Scheme::Split,
        study.grid(),
        1.0,
        CostKind::LeakagePower,
    );
    let front = system_front(&groups);
    let deadline = study.delay_sweep(5)[2];
    let exact = best_under_deadline(&front, deadline.0).expect("feasible");
    let approx = anneal(&groups, deadline.0, AnnealConfig::default(), 99);
    assert!(approx.feasible);
    assert!(
        approx.cost >= exact.cost - 1e-12,
        "annealer beat exact solver"
    );
    assert!(
        approx.cost <= exact.cost * 1.05,
        "annealer {:.4e} too far from exact {:.4e}",
        approx.cost,
        exact.cost
    );
}

#[test]
fn figure2_dual_dual_is_near_optimal() {
    // E6 headline: the (2 Tox, 2 Vth) curve is within a few percent of
    // (2 Tox, 3 Vth) — "a process with dual Tox and dual Vth is
    // sufficient to achieve near optimal total energy".
    let study = quick_study();
    let stats = study.stats(16 * 1024, 1024 * 1024).expect("simulated");
    let memsys = MemorySystemStudy::new(
        16 * 1024,
        1024 * 1024,
        stats,
        &TechnologyNode::bptm65(),
        KnobGrid::coarse(),
        MainMemory::default(),
    )
    .expect("valid");
    let targets = memsys.amat_sweep(6);
    let curves = memsys.tuple_curves(
        &[
            TupleCounts { n_tox: 2, n_vth: 2 },
            TupleCounts { n_tox: 2, n_vth: 3 },
        ],
        &targets,
    );
    let dual = &curves[0].points;
    let triple = &curves[1].points;
    assert!(dual.len() >= 4);
    // Skip the tightest target, where every restriction is strained and
    // the curves fan out (visible in the paper's Figure 2 as well).
    for (d, t) in dual.iter().zip(triple).skip(1) {
        assert!(t.1 <= d.1 + 1e-9, "more Vths hurt at {} ps", d.0);
        assert!(
            d.1 <= t.1 * 1.15,
            "dual/dual {:.2} pJ not near triple-Vth {:.2} pJ at {} ps",
            d.1,
            t.1,
            d.0
        );
    }
}

#[test]
fn suite_generators_feed_the_full_pipeline() {
    // Sanity: every suite produces nonzero L1 and L2 demand traffic
    // through the standard hierarchy.
    for suite in SuiteKind::ALL {
        let table = MissRateTable::build(&[16 * 1024], &[512 * 1024], &[suite], 1, 20_000, 40_000);
        let s = table.get(16 * 1024, 512 * 1024).expect("simulated");
        assert!(s.l1_miss_rate > 0.0, "{}: no L1 misses", suite.name());
        assert!(
            (0.0..=1.0).contains(&s.l2_local_miss_rate),
            "{}: bad m2",
            suite.name()
        );
    }
}

#[test]
fn iso_amat_solutions_respect_the_constraint_everywhere() {
    let study = quick_study();
    let l2_sizes = [256 * 1024, 1024 * 1024, 4 * 1024 * 1024];
    for slack in [0.05, 0.10, 0.20] {
        let target = study
            .amat_target(16 * 1024, &l2_sizes, slack)
            .expect("simulated");
        for scheme in [Scheme::Uniform, Scheme::Split] {
            let sweep = study
                .l2_size_sweep(16 * 1024, &l2_sizes, scheme, target)
                .expect("simulated");
            for row in sweep.rows.iter().filter(|r| r.amat.is_some()) {
                assert!(row.amat.expect("filtered").0 <= target.0 + 1e-15);
            }
        }
    }
}
