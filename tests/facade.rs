//! Facade-level contracts: re-exports resolve, and the types users hold
//! across threads are `Send`/`Sync` (C-SEND-SYNC).

use nmcache::archsim::{CacheSim, MissRateTable, TwoLevel};
use nmcache::core::single::SingleCacheStudy;
use nmcache::core::twolevel::TwoLevelStudy;
use nmcache::core::Table;
use nmcache::device::{KnobGrid, KnobPoint, TechnologyNode};
use nmcache::geometry::{CacheCircuit, CacheMetrics};
use nmcache::opt::{Candidate, Group};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn core_types_are_send_sync() {
    assert_send_sync::<TechnologyNode>();
    assert_send_sync::<KnobPoint>();
    assert_send_sync::<KnobGrid>();
    assert_send_sync::<CacheCircuit>();
    assert_send_sync::<CacheMetrics>();
    assert_send_sync::<Candidate>();
    assert_send_sync::<Group>();
    assert_send_sync::<Table>();
    assert_send_sync::<MissRateTable>();
    assert_send_sync::<SingleCacheStudy>();
    assert_send_sync::<TwoLevelStudy>();
}

#[test]
fn simulators_are_send() {
    assert_send::<CacheSim>();
    assert_send::<TwoLevel>();
    assert_send::<nmcache::archsim::DecaySim>();
}

#[test]
fn a_study_can_be_shared_across_threads() {
    let study = std::sync::Arc::new(SingleCacheStudy::paper_16kb().expect("valid"));
    let deadline = study.delay_sweep(4)[2];
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let study = std::sync::Arc::clone(&study);
            std::thread::spawn(move || {
                study
                    .optimize(nmcache::core::groups::Scheme::Split, deadline)
                    .expect("feasible")
                    .leakage
                    .total()
                    .0
            })
        })
        .collect();
    let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Deterministic: every thread sees the same optimum.
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn facade_modules_reexport_the_workspace() {
    // Spot-check that each facade path names the same type as the
    // underlying crate (compile-time identity via function signatures).
    fn takes_device(_: nm_device::KnobPoint) {}
    takes_device(nmcache::device::KnobPoint::nominal());

    fn takes_geometry(_: nm_geometry::CacheConfig) {}
    takes_geometry(nmcache::geometry::CacheConfig::new(16 * 1024, 64, 4).unwrap());
}
