//! Executor determinism: sweep outputs must be bit-identical no matter
//! how many workers ran them, and the recorded statistics must account
//! for every submitted work item.

use nmcache::archsim::workload::SuiteKind;
use nmcache::archsim::{MissRateTable, PairStats};
use nmcache::core::amat::MainMemory;
use nmcache::core::memsys::{MemorySystemStudy, TupleCounts};
use nmcache::device::{KnobGrid, TechnologyNode};
use nmcache::sweep::{set_global_workers, stats, ParallelSweep};
use std::num::NonZeroUsize;

fn worker_counts() -> Vec<usize> {
    let avail = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let mut counts = vec![1, 2, avail];
    counts.dedup();
    counts
}

/// Runs `f` once per worker count and asserts every run equals the first.
fn assert_worker_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) {
    let mut reference: Option<R> = None;
    for workers in worker_counts() {
        set_global_workers(Some(workers));
        let got = f();
        match &reference {
            None => reference = Some(got),
            Some(expect) => {
                assert_eq!(&got, expect, "output changed with {workers} workers")
            }
        }
    }
    set_global_workers(None);
}

#[test]
fn missrate_table_identical_across_worker_counts() {
    assert_worker_invariant(|| {
        MissRateTable::build(
            &[4 * 1024, 16 * 1024],
            &[128 * 1024, 512 * 1024],
            &[SuiteKind::Spec2000, SuiteKind::TpcC],
            2005,
            10_000,
            20_000,
        )
    });
}

#[test]
fn tuple_curves_identical_across_worker_counts() {
    let stats = PairStats {
        l1_miss_rate: 0.05,
        l2_local_miss_rate: 0.25,
        l1_writeback_rate: 0.01,
        write_fraction: 0.3,
        measured: 1,
    };
    let study = MemorySystemStudy::new(
        16 * 1024,
        1024 * 1024,
        stats,
        &TechnologyNode::bptm65(),
        KnobGrid::coarse(),
        MainMemory::default(),
    )
    .expect("valid study");
    let targets = study.amat_sweep(3);
    let tuples = [
        TupleCounts { n_tox: 2, n_vth: 1 },
        TupleCounts { n_tox: 1, n_vth: 2 },
    ];
    assert_worker_invariant(|| {
        let curves = study.tuple_curves(&tuples, &targets);
        // Compare the raw bits: "bit-identical" is the executor contract.
        curves
            .into_iter()
            .map(|s| {
                (
                    s.label,
                    s.points
                        .into_iter()
                        .map(|(x, y)| (x.to_bits(), y.to_bits()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>()
    });
}

#[test]
fn sweep_stats_items_match_submitted_count() {
    stats::enable();
    stats::drain();
    let items: Vec<u32> = (0..37).collect();
    ParallelSweep::new()
        .with_workers(4)
        .labeled("determinism-count")
        .map(&items, |&x| x + 1);
    let recorded = stats::drain();
    stats::disable();
    let entry = recorded
        .iter()
        .find(|s| s.label == "determinism-count")
        .expect("sweep recorded while stats were enabled");
    assert_eq!(entry.items, items.len());
    assert!(entry.workers >= 1 && entry.workers <= 4);
}
