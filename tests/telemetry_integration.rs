//! Integration tests of the unified telemetry layer: counter atomicity
//! under real `ParallelSweep` fan-out, drain/reset isolation, the
//! serde-shim round-trip of the report JSON, and a golden study-run
//! metrics report produced by the `nmcache` binary.

use nmcache::sweep::ParallelSweep;
use nmcache::telemetry;
use std::process::Command;
use std::sync::Mutex;

/// Serialises in-process tests that touch the process-global registry.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn counters_survive_parallel_sweep_fan_out_without_lost_updates() {
    let _guard = lock();
    telemetry::reset();
    telemetry::enable();
    let items: Vec<u64> = (0..512).collect();
    let results = ParallelSweep::new()
        .with_workers(8)
        .labeled("telemetry-fanout")
        .map(&items, |&x| {
            telemetry::counter_inc("test.fanout");
            x * 2
        });
    let snap = telemetry::drain();
    telemetry::disable();
    assert_eq!(results.len(), 512);
    // Every worker increment landed exactly once.
    assert_eq!(snap.counters["test.fanout"], 512);
    // The executor recorded its own counters and sweep entry too.
    assert_eq!(snap.counters["sweep.items"], 512);
    assert_eq!(snap.counters["sweep.faults"], 0);
    assert_eq!(snap.sweeps.len(), 1);
    assert_eq!(snap.sweeps[0].label, "telemetry-fanout");
    // Per-item latencies were observed for every item.
    assert_eq!(snap.histograms["sweep.item.telemetry-fanout"].count, 512);
}

#[test]
fn drain_isolates_regions_and_reset_clears() {
    let _guard = lock();
    telemetry::reset();
    telemetry::enable();
    telemetry::counter_inc("test.region");
    let first = telemetry::drain();
    assert_eq!(first.counters["test.region"], 1);
    // A fresh region starts empty.
    telemetry::counter_inc("test.region");
    telemetry::counter_inc("test.region");
    let second = telemetry::drain();
    assert_eq!(second.counters["test.region"], 2);
    // reset() discards without returning.
    telemetry::counter_inc("test.region");
    telemetry::reset();
    let third = telemetry::drain();
    telemetry::disable();
    assert!(third.counters.is_empty());
}

#[test]
fn report_json_round_trips_through_the_serde_shim() {
    let _guard = lock();
    telemetry::reset();
    telemetry::enable();
    telemetry::counter_add("test.counter", 7);
    telemetry::set_gauge("test.gauge", 2.5);
    telemetry::set_note("test.note", "escaped \"quotes\" and\nnewline");
    telemetry::observe_seconds("test.hist", 0.004);
    {
        let _span = telemetry::span("test.span");
    }
    let report = telemetry::RunReport::from_snapshot(telemetry::drain());
    telemetry::disable();
    let json = report.to_json();

    let value = serde_json::parse_value(&json).expect("report JSON parses");
    let serde_json::Value::Object(sections) = &value else {
        panic!("report must be a JSON object");
    };
    let get = |key: &str| {
        sections
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing section {key:?}"))
    };
    assert_eq!(
        get("schema_version"),
        &serde_json::Value::U64(telemetry::SCHEMA_VERSION)
    );
    assert_eq!(
        get("generator"),
        &serde_json::Value::Str("nm-telemetry".into())
    );
    let serde_json::Value::Object(counters) = get("counters") else {
        panic!("counters must be an object");
    };
    assert_eq!(counters[0].0, "test.counter");
    assert_eq!(counters[0].1, serde_json::Value::U64(7));
    let serde_json::Value::Object(notes) = get("notes") else {
        panic!("notes must be an object");
    };
    assert_eq!(
        notes[0].1,
        serde_json::Value::Str("escaped \"quotes\" and\nnewline".into())
    );
    let serde_json::Value::Object(spans) = get("spans") else {
        panic!("spans must be an object");
    };
    assert_eq!(spans[0].0, "test.span");

    // The Chrome trace parses too.
    let trace = telemetry::report::chrome_trace_json(report.snapshot());
    let value = serde_json::parse_value(&trace).expect("trace JSON parses");
    let serde_json::Value::Object(doc) = &value else {
        panic!("trace must be a JSON object");
    };
    let events = doc
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents present");
    let serde_json::Value::Array(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(events.len(), 1);
}

#[test]
fn study_run_writes_a_golden_metrics_report() {
    let dir = std::env::temp_dir().join("nmcache-telemetry-golden");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.json");
    let trace = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_nmcache"))
        .args([
            "schemes",
            "--quick",
            "--steps",
            "2",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&metrics).expect("metrics written");
    let value = serde_json::parse_value(&json).expect("metrics JSON parses");
    let serde_json::Value::Object(sections) = &value else {
        panic!("report must be a JSON object");
    };
    let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema_version",
            "generator",
            "notes",
            "counters",
            "gauges",
            "spans",
            "histograms",
            "sweeps"
        ],
        "stable section order"
    );
    let counters = sections
        .iter()
        .find(|(k, _)| k == "counters")
        .map(|(_, v)| v)
        .unwrap();
    let serde_json::Value::Object(counters) = counters else {
        panic!("counters must be an object");
    };
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| match v {
                serde_json::Value::U64(n) => *n,
                other => panic!("counter {name} not a number: {other:?}"),
            })
            .unwrap_or_else(|| panic!("missing counter {name:?}"))
    };
    // A healthy study builds surfaces and touches the memo cache...
    assert!(counter("eval.surface_built") > 0);
    assert!(counter("eval.front_built") > 0);
    assert!(counter("sweep.items") > 0);
    // ...and records zero fault-class events.
    assert_eq!(counter("sweep.faults"), 0);
    assert_eq!(counter("sweep.retries"), 0);
    assert_eq!(counter("sweep.poisoned_workers"), 0);
    // The command note names the study.
    assert!(json.contains("\"command\": \"schemes\""), "{json}");

    // The Perfetto trace is valid JSON with at least one complete event.
    let trace_json = std::fs::read_to_string(&trace).expect("trace written");
    let value = serde_json::parse_value(&trace_json).expect("trace JSON parses");
    let serde_json::Value::Object(doc) = &value else {
        panic!("trace must be a JSON object");
    };
    let serde_json::Value::Array(events) = doc
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents present")
    else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty());
    assert!(trace_json.contains("\"ph\": \"X\""));
}

#[test]
fn flags_off_produces_byte_identical_tables() {
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_nmcache"))
            .args(["schemes", "--quick", "--steps", "2"])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        out.stdout
    };
    // With no observability flag the registry never enables, so two runs
    // print byte-identical golden tables.
    assert_eq!(run(), run());
}
