//! Property-based tests over the core invariants, spanning crates.

use nmcache::archsim::cache::{CacheParams, CacheSim, Replacement};
use nmcache::archsim::Access;
use nmcache::device::units::{Angstroms, Microns, Volts};
use nmcache::device::{KnobPoint, Mosfet, TechnologyNode};
use nmcache::geometry::{CacheCircuit, CacheConfig, ComponentKnobs};
use nmcache::opt::constraint::best_under_deadline;
use nmcache::opt::merge::{system_front, tied_front};
use nmcache::opt::pareto::{dominates, prune};
use nmcache::opt::{Candidate, Group};
use proptest::prelude::*;

fn arb_knobs() -> impl Strategy<Value = KnobPoint> {
    (0.2f64..=0.5, 10.0f64..=14.0)
        .prop_map(|(v, t)| KnobPoint::new(Volts(v), Angstroms(t)).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any legal knob point produces finite, strictly positive cache
    /// metrics — no NaN/zero escapes the model on any input.
    #[test]
    fn cache_metrics_always_finite_and_positive(p in arb_knobs()) {
        let tech = TechnologyNode::bptm65();
        let circuit = CacheCircuit::new(CacheConfig::new(16 * 1024, 64, 4).unwrap(), &tech);
        let m = circuit.analyze(&ComponentKnobs::uniform(p));
        prop_assert!(m.access_time().0.is_finite() && m.access_time().0 > 0.0);
        prop_assert!(m.leakage().total().0.is_finite() && m.leakage().total().0 > 0.0);
        prop_assert!(m.read_energy().0.is_finite() && m.read_energy().0 > 0.0);
        prop_assert!(m.area().0.is_finite() && m.area().0 > 0.0);
    }

    /// Leakage decreases monotonically in Vth at fixed Tox (total across
    /// mechanisms), for any transistor width.
    #[test]
    fn transistor_leakage_monotone_in_vth(
        width in 0.1f64..4.0,
        tox in 10.0f64..=14.0,
        v_lo in 0.2f64..0.44,
        dv in 0.02f64..0.06,
    ) {
        let tech = TechnologyNode::bptm65();
        let lo = KnobPoint::new(Volts(v_lo), Angstroms(tox)).unwrap();
        let hi = KnobPoint::new(Volts(v_lo + dv), Angstroms(tox)).unwrap();
        let l = tech.drawn_length(lo.tox());
        let m_lo = Mosfet::nmos(Microns(width), l, lo);
        let m_hi = Mosfet::nmos(Microns(width), l, hi);
        prop_assert!(m_hi.leakage(&tech).total().0 < m_lo.leakage(&tech).total().0);
    }

    /// Drive current decreases in Vth and in Tox (thicker oxide, longer
    /// channel) — so effective resistance increases.
    #[test]
    fn resistance_monotone_in_both_knobs(
        v in 0.2f64..0.45,
        t in 10.0f64..13.0,
    ) {
        let tech = TechnologyNode::bptm65();
        let base = KnobPoint::new(Volts(v), Angstroms(t)).unwrap();
        let more_v = KnobPoint::new(Volts(v + 0.05), Angstroms(t)).unwrap();
        let more_t = KnobPoint::new(Volts(v), Angstroms(t + 1.0)).unwrap();
        let r = |p: KnobPoint| {
            Mosfet::nmos(Microns(1.0), tech.drawn_length(p.tox()), p)
                .effective_resistance(&tech)
                .0
        };
        prop_assert!(r(more_v) > r(base));
        prop_assert!(r(more_t) > r(base));
    }

    /// Whole-cache monotonicity: a uniformly more conservative assignment
    /// never leaks more and is never faster.
    #[test]
    fn cache_metrics_monotone_under_uniform_knobs(
        v in 0.2f64..0.44,
        t in 10.0f64..13.0,
        size_log2 in 13u32..19, // 8 KB .. 256 KB
    ) {
        let tech = TechnologyNode::bptm65();
        let config = CacheConfig::new(1u64 << size_log2, 64, 4).unwrap();
        let circuit = CacheCircuit::new(config, &tech);
        let a = KnobPoint::new(Volts(v), Angstroms(t)).unwrap();
        let b = KnobPoint::new(Volts(v + 0.05), Angstroms(t + 1.0)).unwrap();
        let ma = circuit.analyze(&ComponentKnobs::uniform(a));
        let mb = circuit.analyze(&ComponentKnobs::uniform(b));
        prop_assert!(mb.leakage().total().0 < ma.leakage().total().0);
        prop_assert!(mb.access_time().0 > ma.access_time().0);
    }

    /// Pareto pruning: no survivor dominates another, and every pruned
    /// candidate is dominated by (or duplicates) some survivor.
    #[test]
    fn prune_is_sound_and_complete(
        raw in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60)
    ) {
        let cands: Vec<Candidate> = raw
            .iter()
            .map(|&(d, c)| Candidate::new(KnobPoint::nominal(), d, c))
            .collect();
        let front = prune(cands.clone());
        prop_assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(a, b));
                }
            }
        }
        for c in &cands {
            let covered = front.iter().any(|f| {
                dominates(f, c) || (f.delay == c.delay && f.cost == c.cost)
            });
            prop_assert!(covered, "{c:?} neither kept nor dominated");
        }
    }

    /// The merge solver equals brute force on random 3-group systems, for
    /// every feasible deadline.
    #[test]
    fn merge_equals_brute_force(
        g1 in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..8),
        g2 in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..8),
        g3 in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 1..8),
        deadline in 1.0f64..30.0,
    ) {
        let mk = |pts: &[(f64, f64)], name: &str| {
            Group::new(
                name,
                pts.iter()
                    .map(|&(d, c)| Candidate::new(KnobPoint::nominal(), d, c))
                    .collect(),
            )
        };
        let groups = vec![mk(&g1, "a"), mk(&g2, "b"), mk(&g3, "c")];
        let front = system_front(&groups);

        let mut brute = f64::INFINITY;
        for a in &g1 {
            for b in &g2 {
                for c in &g3 {
                    if a.0 + b.0 + c.0 <= deadline {
                        brute = brute.min(a.1 + b.1 + c.1);
                    }
                }
            }
        }
        let merged = best_under_deadline(&front, deadline).map(|p| p.cost);
        match merged {
            Some(m) => prop_assert!((m - brute).abs() < 1e-9, "merge {m} vs brute {brute}"),
            None => prop_assert!(brute.is_infinite()),
        }
    }

    /// Tying groups to one knob never beats the untied optimum.
    #[test]
    fn tied_never_beats_untied(
        costs in prop::collection::vec((0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0, 0.1f64..5.0), 3..10),
        deadline in 2.0f64..25.0,
    ) {
        // Two groups over the same "grid": candidate i of each group
        // shares a knob identity (delays/costs differ per group).
        let grid: Vec<KnobPoint> = (0..costs.len())
            .map(|i| {
                KnobPoint::new(
                    Volts(0.2 + 0.3 * i as f64 / costs.len() as f64),
                    Angstroms(10.0),
                )
                .unwrap()
            })
            .collect();
        let ga = Group::new(
            "a",
            costs
                .iter()
                .zip(&grid)
                .map(|(&(d, c, _, _), &k)| Candidate::new(k, d, c))
                .collect(),
        );
        let gb = Group::new(
            "b",
            costs
                .iter()
                .zip(&grid)
                .map(|(&(_, _, d, c), &k)| Candidate::new(k, d, c))
                .collect(),
        );
        let tied = tied_front(&[ga.clone(), gb.clone()]);
        let free = system_front(&[ga, gb]);
        let best_tied = best_under_deadline(&tied, deadline).map(|p| p.cost);
        let best_free = best_under_deadline(&free, deadline).map(|p| p.cost);
        if let Some(t) = best_tied {
            let f = best_free.expect("tied feasible implies untied feasible");
            prop_assert!(f <= t + 1e-9);
        }
    }

    /// Cache simulator: miss count never exceeds accesses, and a repeat
    /// of the same trace on a fresh cache gives identical stats.
    #[test]
    fn simulator_sane_on_random_traces(
        addrs in prop::collection::vec(0u64..(1 << 22), 50..400),
        ways_log2 in 0u32..3,
    ) {
        let params = CacheParams::new(8 * 1024, 64, 1 << ways_log2).unwrap();
        let run = || {
            let mut sim = CacheSim::new(params, Replacement::Lru);
            for &a in &addrs {
                sim.access(Access::read(a));
            }
            sim.stats()
        };
        let s1 = run();
        let s2 = run();
        prop_assert_eq!(s1, s2);
        prop_assert!(s1.misses <= s1.accesses);
        prop_assert_eq!(s1.accesses, addrs.len() as u64);
        // Every distinct block costs at least one compulsory miss.
        let mut blocks: Vec<u64> = addrs.iter().map(|a| a / 64).collect();
        blocks.sort_unstable();
        blocks.dedup();
        prop_assert!(s1.misses >= blocks.len() as u64);
    }

    /// LRU containment on a shared trace: a cache with double the ways at
    /// the same set count never misses more (inclusion property holds per
    /// set for LRU).
    #[test]
    fn lru_inclusion_in_associativity(
        addrs in prop::collection::vec(0u64..(1 << 20), 100..400),
    ) {
        // Same number of sets (32), doubled ways => doubled capacity.
        let small = CacheParams::new(4 * 1024, 64, 2).unwrap();
        let big = CacheParams::new(8 * 1024, 64, 4).unwrap();
        assert_eq!(small.sets(), big.sets());
        let run = |p: CacheParams| {
            let mut sim = CacheSim::new(p, Replacement::Lru);
            for &a in &addrs {
                sim.access(Access::read(a));
            }
            sim.stats().misses
        };
        prop_assert!(run(big) <= run(small));
    }
}
