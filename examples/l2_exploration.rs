//! L2 design-space exploration (the paper's Section 5).
//!
//! ```text
//! cargo run --release --example l2_exploration
//! ```
//!
//! Simulates the benchmark-suite mix over every (L1, L2) size pair, then
//! answers the paper's two L2 questions at an iso-AMAT constraint:
//!
//! 1. with a single `Vth`/`Tox` pair per L2, which size leaks least?
//! 2. does splitting cell-array/periphery pairs move the winner to a
//!    smaller L2?

use nmcache::core::groups::Scheme;
use nmcache::core::twolevel::TwoLevelStudy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("simulating benchmark suites over the (L1, L2) size matrix ...");
    let study = TwoLevelStudy::standard(false);
    println!(
        "done: {} size pairs x {:?}",
        study.missrates().len(),
        study.missrates().suites()
    );

    let l1 = 16 * 1024;
    let l2_sizes = TwoLevelStudy::standard_l2_sizes();
    let target = study.amat_target(l1, &l2_sizes, 0.06)?;
    println!(
        "\niso-AMAT constraint: {:.0} ps (6% slack over the best corner)\n",
        target.picos()
    );

    for scheme in [Scheme::Uniform, Scheme::Split] {
        let sweep = study.l2_size_sweep(l1, &l2_sizes, scheme, target)?;
        println!("{}", sweep.to_table());
        match sweep.winner() {
            Some(w) => println!(
                "-> {scheme} winner: {} KB at {:.3} mW total\n",
                w.size_bytes / 1024,
                w.total_leakage.expect("winner is feasible").milli()
            ),
            None => println!("-> {scheme}: no feasible size at this AMAT\n"),
        }
    }

    println!("per the paper: the single-pair winner is a large L2, while split");
    println!("cell/periphery pairs let a smaller L2 meet the same AMAT with less leakage.");
    Ok(())
}
