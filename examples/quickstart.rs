//! Quickstart: analyse one cache, then optimise its knob assignment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole public API surface once: build a technology node,
//! describe a cache, analyse it under a uniform (`Vth`, `Tox`) assignment,
//! and then let the Scheme II optimiser find the minimum-leakage
//! assignment under a delay constraint.

use nmcache::core::groups::Scheme;
use nmcache::core::single::SingleCacheStudy;
use nmcache::device::units::{Angstroms, Volts};
use nmcache::device::{KnobGrid, KnobPoint, TechnologyNode};
use nmcache::geometry::{CacheCircuit, CacheConfig, ComponentId, ComponentKnobs, COMPONENT_IDS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The 65 nm technology node the paper studies (BPTM-like).
    let tech = TechnologyNode::bptm65();
    println!(
        "node {}: Vdd = {}, T = {:.1}, swing ≈ {:.1} mV/dec",
        tech.name(),
        tech.vdd(),
        tech.temperature(),
        tech.subthreshold_swing_mv(Angstroms(12.0)),
    );

    // 2. A 16 KB, 4-way, 64 B-line L1 cache.
    let config = CacheConfig::new(16 * 1024, 64, 4)?;
    let circuit = CacheCircuit::new(config, &tech);
    let org = config.organization();
    println!(
        "\n{config}: {} sets, {} subarrays of {}x{} cells, {} tag bits",
        config.sets(),
        org.subarrays,
        org.rows,
        org.cols,
        config.tag_bits()
    );

    // 3. Analyse it at a hand-picked uniform knob point.
    let knobs = KnobPoint::new(Volts(0.30), Angstroms(12.0))?;
    let metrics = circuit.analyze(&ComponentKnobs::uniform(knobs));
    println!("\nuniform {knobs} -> {metrics}");
    for id in COMPONENT_IDS {
        let m = metrics.component(id);
        println!(
            "  {id:<13} {:>7.1} ps  {:>9.4} mW  {:>7.2} pJ/read",
            m.delay.picos(),
            m.leakage.total().milli(),
            m.read_energy.picos()
        );
    }

    // 4. Optimise: minimum leakage at a 10 %-slack delay constraint under
    //    Scheme II (cell array vs periphery — the paper's recommendation).
    let study = SingleCacheStudy::new(config, &tech, KnobGrid::paper());
    let deadline = circuit.fastest_access_time() * 1.10;
    let solution = study
        .optimize(Scheme::Split, deadline)
        .expect("10% slack is feasible");
    println!(
        "\nScheme II optimum at {:.0} ps deadline:",
        deadline.picos()
    );
    println!(
        "  cells     -> {}",
        solution.knobs[ComponentId::MemoryArray]
    );
    println!("  periphery -> {}", solution.knobs[ComponentId::Decoder]);
    println!(
        "  access {:.0} ps, leakage {}",
        solution.access_time.picos(),
        solution.leakage
    );

    // 5. Compare with the naive all-fast assignment.
    let naive = circuit.analyze(&ComponentKnobs::uniform(KnobPoint::fastest()));
    println!(
        "\nall-fast corner leaks {:.2} mW -> optimised assignment saves {:.1}x",
        naive.leakage().total().milli(),
        naive.leakage().total() / solution.leakage.total()
    );
    Ok(())
}
