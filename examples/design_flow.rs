//! A complete designer flow on one cache: organise → check stability →
//! optimise knobs → stress the optimum.
//!
//! ```text
//! cargo run --release --example design_flow
//! ```
//!
//! 1. explore subarray foldings for a 64 KB cache and pick one,
//! 2. verify the SRAM cell's read stability across the knob window,
//! 3. optimise the `Vth`/`Tox` assignment (Scheme II) at a delay target,
//! 4. stress the optimum with die-to-die variation.

use nmcache::core::groups::Scheme;
use nmcache::core::single::SingleCacheStudy;
use nmcache::core::variation::VariationStudy;
use nmcache::device::snm::{is_stable, read_snm};
use nmcache::device::variation::VariationModel;
use nmcache::device::{KnobGrid, KnobPoint, TechnologyNode};
use nmcache::geometry::explore::{best, Objective};
use nmcache::geometry::{CacheCircuit, CacheConfig, ComponentId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechnologyNode::bptm65();
    let config = CacheConfig::new(64 * 1024, 64, 4)?;

    // 1. Organisation: compare the time- and energy-optimal foldings.
    println!("— step 1: subarray organisation —");
    for (label, objective) in [
        ("fastest", Objective::AccessTime),
        ("lowest-energy", Objective::ReadEnergy),
        ("best EDP", Objective::EnergyDelay),
    ] {
        let e = best(config, &tech, objective).expect("config has foldings");
        println!(
            "  {label:<14} {:>4} x {:<4} x {:<3} mats: {}",
            e.org.rows, e.org.cols, e.org.subarrays, e.metrics
        );
    }
    let chosen = best(config, &tech, Objective::EnergyDelay).expect("config has foldings");
    let circuit = CacheCircuit::with_organization(config, &tech, chosen.org);

    // 2. Stability: the cell must stay manufacturable over the knob window
    //    thanks to the Tox-driven scaling rule.
    println!("\n— step 2: cell stability over the knob window —");
    let beta = 0.20 / 0.15; // default cell's pull-down / access ratio
    for tox in [10.0, 12.0, 14.0] {
        let p = KnobPoint::new(
            nmcache::device::units::Volts(0.25),
            nmcache::device::units::Angstroms(tox),
        )?;
        let snm = read_snm(&tech, beta, p, tech.drawn_length(p.tox()));
        println!(
            "  Tox = {tox:>4.1} A: read SNM = {:>5.1} mV ({})",
            snm.0 * 1e3,
            if is_stable(snm) { "stable" } else { "UNSTABLE" }
        );
    }

    // 3. Knob optimisation at 12 % delay slack.
    println!("\n— step 3: Scheme II knob optimisation —");
    let study = SingleCacheStudy::with_circuit(circuit.clone(), KnobGrid::paper());
    let deadline = circuit.fastest_access_time() * 1.12;
    let solution = study
        .optimize(Scheme::Split, deadline)
        .expect("12% slack is feasible");
    println!(
        "  deadline {:.0} ps -> cells {}, periphery {}",
        deadline.picos(),
        solution.knobs[ComponentId::MemoryArray],
        solution.knobs[ComponentId::Decoder]
    );
    println!("  leakage: {}", solution.leakage);

    // 4. Variation stress.
    println!("\n— step 4: die-to-die variation —");
    let vs = VariationStudy::new(study, VariationModel::typical_65nm(), 300, 7);
    println!("{}", vs.to_table(&[deadline]));
    println!("guard-band the deadline (or re-optimise at Vth − 2σ) before tapeout.");
    Ok(())
}
