//! Explore the synthetic benchmark suites on a two-level hierarchy.
//!
//! ```text
//! cargo run --release --example workload_explorer
//! ```
//!
//! Runs every suite through an L1/L2 hierarchy across replacement
//! policies and prints the miss-rate matrix — a pure `nm-archsim` tour
//! with no circuit model involved. Useful for judging whether the
//! generators have the locality structure the Section 5 studies assume.

use nmcache::archsim::cache::{CacheParams, Replacement};
use nmcache::archsim::hierarchy::TwoLevel;
use nmcache::archsim::workload::SuiteKind;

const WARMUP: u64 = 200_000;
const MEASURE: u64 = 400_000;

fn run(suite: SuiteKind, l1: u64, l2: u64, policy: Replacement) -> (f64, f64) {
    let mut h = TwoLevel::new(
        CacheParams::new(l1, 64, 4).expect("legal L1"),
        CacheParams::new(l2, 64, 8).expect("legal L2"),
        policy,
    );
    let mut w = suite.build(7);
    for _ in 0..WARMUP {
        h.access(w.next_access());
    }
    h.reset_stats();
    for _ in 0..MEASURE {
        h.access(w.next_access());
    }
    let s = h.stats();
    (s.l1_miss_rate(), s.l2_local_miss_rate())
}

fn main() {
    println!("L1 miss rate / local L2 miss rate, LRU:");
    print!("{:<14}", "suite");
    let l2_sizes = [256 * 1024u64, 1024 * 1024, 4 * 1024 * 1024];
    for &l2 in &l2_sizes {
        print!("  L2={:>5}K", l2 / 1024);
    }
    println!();
    for suite in SuiteKind::ALL {
        print!("{:<14}", suite.name());
        for &l2 in &l2_sizes {
            let (m1, m2) = run(suite, 16 * 1024, l2, Replacement::Lru);
            print!("  {m1:.3}/{m2:.3}");
        }
        println!();
    }

    println!("\nL1 size sensitivity (L2 = 1 MB, LRU) — the paper expects low, flat rates:");
    for suite in SuiteKind::ALL {
        print!("{:<14}", suite.name());
        for l1 in [4, 8, 16, 32, 64] {
            let (m1, _) = run(suite, l1 * 1024, 1024 * 1024, Replacement::Lru);
            print!("  {:>2}K:{m1:.3}", l1);
        }
        println!();
    }

    println!("\nreplacement policy effect (16K/1M, spec2000-like):");
    for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        let (m1, m2) = run(SuiteKind::Spec2000, 16 * 1024, 1024 * 1024, policy);
        println!("  {policy:?}: m1 = {m1:.4}, m2 = {m2:.4}");
    }
}
