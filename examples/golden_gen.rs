//! Regenerates the golden study tables under `crates/core/tests/golden/`.
//!
//! The golden-equivalence tests (`crates/core/tests/golden_tables.rs`)
//! assert that every study routed through the shared evaluation engine
//! renders byte-identical tables to these snapshots. Run this only when a
//! study's *intended* output changes, and review the diff:
//!
//! ```text
//! cargo run --release --example golden_gen
//! ```

use nm_archsim::workload::SuiteKind;
use nm_archsim::{MissRateTable, PairStats};
use nm_cache_core::amat::MainMemory;
use nm_cache_core::groups::Scheme;
use nm_cache_core::memsys::{MemorySystemStudy, TupleCounts};
use nm_cache_core::mixedtech::MixedTechStudy;
use nm_cache_core::single::SingleCacheStudy;
use nm_cache_core::splitl1::SplitL1Study;
use nm_cache_core::twolevel::{TwoLevelStudy, STANDARD_SUITES};
use nm_device::{KnobGrid, TechProfile, TechnologyNode};
use nm_geometry::CacheConfig;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/core/tests/golden")
}

fn write(name: &str, contents: String) {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("can create golden directory");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("can write golden file");
    println!("[golden] {}", path.display());
}

fn main() {
    // E2 / E7 — single-cache studies on the coarse grid.
    let tech = TechnologyNode::bptm65();
    let single = SingleCacheStudy::new(
        CacheConfig::new(16 * 1024, 64, 4).expect("valid config"),
        &tech,
        KnobGrid::coarse(),
    );
    let deadlines = single.delay_sweep(6);
    write(
        "e2_scheme_comparison.txt",
        single.scheme_comparison(&deadlines[1..]).to_string(),
    );
    write(
        "e7_knob_ablation.txt",
        single.knob_ablation(&deadlines[2..5]).to_string(),
    );

    // E3 / E4 / E5 — two-level studies over a small deterministic
    // miss-rate table (the same table the unit tests use).
    let l1_sizes: [u64; 3] = [8 * 1024, 16 * 1024, 32 * 1024];
    let l2_sizes: [u64; 3] = [256 * 1024, 1024 * 1024, 4 * 1024 * 1024];
    let missrates = MissRateTable::build(
        &l1_sizes,
        &l2_sizes,
        &STANDARD_SUITES,
        2005,
        400_000,
        400_000,
    );
    let two = TwoLevelStudy::new(
        missrates,
        TechnologyNode::bptm65(),
        KnobGrid::coarse(),
        MainMemory::default(),
    );
    let target = two
        .amat_target(16 * 1024, &l2_sizes, 0.06)
        .expect("sizes simulated");
    write(
        "e3_l2_sweep_uniform.txt",
        two.l2_size_sweep(16 * 1024, &l2_sizes, Scheme::Uniform, target)
            .expect("sizes simulated")
            .to_table()
            .to_string(),
    );
    write(
        "e4_l2_sweep_split.txt",
        two.l2_size_sweep(16 * 1024, &l2_sizes, Scheme::Split, target)
            .expect("sizes simulated")
            .to_table()
            .to_string(),
    );
    let l1_target = two
        .amat_target(8 * 1024, &[1024 * 1024], 0.15)
        .expect("sizes simulated");
    write(
        "e5_l1_sweep.txt",
        two.l1_size_sweep(&l1_sizes, 1024 * 1024, l1_target)
            .expect("sizes simulated")
            .to_table()
            .to_string(),
    );

    // X4 — split I$/D$ versus unified L1.
    let split = SplitL1Study::new(
        16 * 1024,
        16 * 1024,
        512 * 1024,
        SuiteKind::Spec2000,
        200_000,
        KnobGrid::coarse(),
    )
    .expect("valid configuration");
    write("x4_split_l1.txt", split.to_table(&[0.10, 0.20]).to_string());

    // E6 — Figure 2 tuple curves with pinned miss-rate statistics.
    let stats = PairStats {
        l1_miss_rate: 0.05,
        l2_local_miss_rate: 0.25,
        l1_writeback_rate: 0.01,
        write_fraction: 0.3,
        measured: 1,
    };
    let memsys = MemorySystemStudy::new(
        16 * 1024,
        1024 * 1024,
        stats,
        &TechnologyNode::bptm65(),
        KnobGrid::coarse(),
        MainMemory::default(),
    )
    .expect("valid configuration");
    let tuples = [
        TupleCounts { n_tox: 2, n_vth: 2 },
        TupleCounts { n_tox: 2, n_vth: 1 },
        TupleCounts { n_tox: 1, n_vth: 2 },
    ];
    write(
        "e6_tuple_table.txt",
        memsys
            .tuple_table(&tuples, &memsys.amat_sweep(4))
            .to_string(),
    );

    // E8 — three-level mixed-technology comparison. Matches the CLI's
    // `nmcache e8 --quick` defaults exactly, so CI can diff the two.
    let mixed = MixedTechStudy::standard(true).expect("standard study builds");
    write(
        "e8_mixed_tech.txt",
        mixed
            .compare(
                &[
                    TechProfile::sram(),
                    TechProfile::edram(),
                    TechProfile::stt_mram(),
                ],
                0.15,
            )
            .expect("all candidates evaluable")
            .to_table()
            .to_string(),
    );
}
