//! How many `Vth`s and `Tox`es does a process need? (Figure 2.)
//!
//! ```text
//! cargo run --release --example tuple_selection
//! ```
//!
//! Optimises the total energy of a 16 KB L1 + 1 MB L2 + DRAM memory
//! system at a sweep of AMAT targets, restricted to small (`nTox`,
//! `nVth`) value counts, and prints which concrete values the optimiser
//! picks — the practical answer to "which implants and oxides should my
//! process offer?".

use nmcache::archsim::workload::SuiteKind;
use nmcache::archsim::MissRateTable;
use nmcache::core::amat::MainMemory;
use nmcache::core::memsys::{MemorySystemStudy, TupleCounts};
use nmcache::device::{KnobGrid, TechnologyNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (l1, l2) = (16 * 1024, 1024 * 1024);
    println!(
        "simulating the suite mix on {}K/{}K ...",
        l1 / 1024,
        l2 / 1024
    );
    let suites = [SuiteKind::Spec2000, SuiteKind::TpcC, SuiteKind::SpecWeb];
    let table = MissRateTable::build(&[l1], &[l2], &suites, 2005, 300_000, 600_000);
    let stats = *table.get(l1, l2).expect("pair simulated");
    println!(
        "m1 = {:.4}, m2 = {:.4}",
        stats.l1_miss_rate, stats.l2_local_miss_rate
    );

    let study = MemorySystemStudy::new(
        l1,
        l2,
        stats,
        &TechnologyNode::bptm65(),
        KnobGrid::coarse(),
        MainMemory::default(),
    )?;

    let targets = study.amat_sweep(7);
    println!(
        "\nAMAT range: {:.0} .. {:.0} ps (memory floor {:.0} ps)",
        study.min_amat().picos(),
        study.max_amat().picos(),
        study.amat_floor().picos()
    );

    let curves = study.tuple_curves(&TupleCounts::FIGURE2, &targets);
    println!("\n{}", study.tuple_table(&TupleCounts::FIGURE2, &targets));

    // Who wins where?
    println!("\nper-target winners:");
    for (i, &target) in targets.iter().enumerate() {
        let mut best: Option<(&str, f64)> = None;
        for c in &curves {
            if let Some(&(_, e)) = c.points.get(i) {
                if best.is_none_or(|(_, be)| e < be) {
                    best = Some((&c.label, e));
                }
            }
        }
        if let Some((label, e)) = best {
            println!("  AMAT ≤ {:>6.0} ps: {label} at {e:.1} pJ", target.picos());
        }
    }

    println!("\nper the paper: dual-Tox/dual-Vth is near-optimal, and a single");
    println!("Tox with two Vths beats two Toxes with a single Vth.");
    Ok(())
}
