//! Will the paper's optimum survive real silicon? (Extensions X1/X2.)
//!
//! ```text
//! cargo run --release --example variation_and_thermal
//! ```
//!
//! Takes the Scheme II optimum of the 16 KB cache and stresses it two
//! ways: die-to-die process variation (Monte-Carlo over `Vth`/`Tox`
//! corners) and operating-temperature excursions, reporting what a
//! designer would guard-band for.

use nmcache::core::thermal::ThermalStudy;
use nmcache::core::variation::paper_16kb_variation;
use nmcache::device::units::Volts;
use nmcache::device::variation::subthreshold_amplification;
use nmcache::device::TechnologyNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Variation -------------------------------------------------------
    let vs = paper_16kb_variation(300, 65)?;
    let deadlines: Vec<_> = vs.study().delay_sweep(7).into_iter().skip(2).collect();
    println!("{}", vs.to_table(&deadlines));

    let tech = TechnologyNode::bptm65();
    let n_vt = Volts(
        tech.subthreshold_n(nmcache::device::units::Angstroms(12.0)) * tech.thermal_voltage().0,
    );
    println!(
        "analytic lognormal mean uplift at σVth = 20 mV: {:.1}%",
        (subthreshold_amplification(Volts(0.020), n_vt) - 1.0) * 100.0
    );
    println!("note the ~50-60% timing yield when the optimum sits on its");
    println!("constraint — real flows guard-band the deadline by ~2σ.\n");

    // --- Temperature -------------------------------------------------------
    let thermal = ThermalStudy::paper_16kb()?;
    for slack in [0.15, 0.40] {
        println!("{}", thermal.to_table(slack));
    }
    println!("the gate-tunnelling fraction rises as the die cools: subthreshold");
    println!("collapses with temperature, the Tox-set gate floor does not —");
    println!("total-leakage optimisation (the paper's point) is what survives.");
    Ok(())
}
