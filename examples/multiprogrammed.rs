//! Multiprogrammed workloads sharing one hierarchy (the `Mix` combinator).
//!
//! ```text
//! cargo run --release --example multiprogrammed
//! ```
//!
//! Interleaves the three paper-era suites as one reference stream — the
//! shared-L2 picture of a multiprogrammed paper-era core — and shows how
//! the blend's miss-rate curve differs from any single suite, shifting
//! the leakage-optimal L2 size.

use nmcache::archsim::cache::CacheParams;
use nmcache::archsim::hierarchy::TwoLevel;
use nmcache::archsim::workload::{Mix, SuiteKind, Workload};
use nmcache::archsim::Replacement;

fn run(workload: &mut dyn Workload, l2_kb: u64) -> (f64, f64) {
    let mut h = TwoLevel::new(
        CacheParams::new(16 * 1024, 64, 4).expect("legal L1"),
        CacheParams::new(l2_kb * 1024, 64, 8).expect("legal L2"),
        Replacement::Lru,
    );
    for _ in 0..300_000 {
        h.access(workload.next_access());
    }
    h.reset_stats();
    for _ in 0..400_000 {
        h.access(workload.next_access());
    }
    let s = h.stats();
    (s.l1_miss_rate(), s.l2_local_miss_rate())
}

fn main() {
    let l2_sizes = [256u64, 1024, 4096];
    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "workload", "L2=256K", "L2=1M", "L2=4M"
    );
    for suite in [SuiteKind::Spec2000, SuiteKind::TpcC, SuiteKind::SpecWeb] {
        print!("{:<22}", suite.name());
        for &l2 in &l2_sizes {
            let mut w = suite.build(7);
            let (_, m2) = run(w.as_mut(), l2);
            print!("{m2:>12.4}");
        }
        println!();
    }
    // An even three-way mixture: the blended stream has a larger combined
    // working set than any single suite.
    print!("{:<22}", "3-way mix");
    for &l2 in &l2_sizes {
        let mut mix = Mix::new(
            vec![
                (1.0, SuiteKind::Spec2000.build(7)),
                (1.0, SuiteKind::TpcC.build(7)),
                (1.0, SuiteKind::SpecWeb.build(7)),
            ],
            99,
        );
        let (_, m2) = run(&mut mix, l2);
        print!("{m2:>12.4}");
    }
    println!();
    println!("\nthe mix keeps improving out to larger L2s than any single suite —");
    println!("multiprogramming pushes the paper's leakage-optimal L2 size upward.");
}
